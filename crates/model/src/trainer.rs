//! Mini-batch fine-tuning: the classification objective on the shared
//! length-bucketed engine ([`crate::batching::TrainLoop`]).
//!
//! Emits exactly the series the paper's Figures 4-6 plot: per-epoch
//! training loss, validation loss and validation accuracy. Model
//! selection follows §5.1: keep the weights from the epoch with the best
//! validation loss. Batches are padded to their length bucket, not to
//! `max_len` — bitwise equivalent (see the `batching` module docs) and
//! proportionally cheaper on length-skewed corpora.

use crate::batching::{self, Batch, EvalStep, Objective, TrainExample, TrainLoop};
use crate::pragformer::PragFormer;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::loss;
use pragformer_tensor::nn::Param;
use pragformer_tensor::serialize::StateDict;

pub use crate::batching::{EpochMetrics, TrainConfig};

/// One encoded example: the **valid token prefix only** (CLS-prefixed,
/// unpadded — the batching engine pads to each batch's length bucket).
#[derive(Clone, Debug)]
pub struct EncodedExample {
    /// Valid token ids (no padding).
    pub ids: Vec<usize>,
    /// Binary label.
    pub label: bool,
}

impl EncodedExample {
    /// Builds an example from a possibly-padded encoding, keeping only
    /// the `valid` prefix (the shape `Vocab::encode` returns).
    pub fn new(mut ids: Vec<usize>, valid: usize, label: bool) -> Self {
        ids.truncate(valid);
        Self { ids, label }
    }

    /// Non-pad token count.
    pub fn valid(&self) -> usize {
        self.ids.len()
    }
}

impl TrainExample for EncodedExample {
    fn token_ids(&self) -> &[usize] {
        &self.ids
    }
}

/// The fine-tuning objective: softmax cross-entropy over a
/// [`PragFormer`]'s CLS head, one example = one loss unit.
pub struct FineTune<'m> {
    /// The model being fine-tuned.
    pub model: &'m mut PragFormer,
}

impl FineTune<'_> {
    fn labels(examples: &[EncodedExample], batch: &Batch) -> Vec<usize> {
        batch.indices.iter().map(|&i| examples[i].label as usize).collect()
    }
}

impl Objective for FineTune<'_> {
    type Example = EncodedExample;

    fn train_step(&mut self, examples: &[EncodedExample], batch: &Batch) -> (f32, f32) {
        let labels = Self::labels(examples, batch);
        self.model.zero_grad();
        let loss = self.model.train_step_seq(&batch.ids, &batch.valid, batch.seq, &labels);
        (loss, batch.indices.len() as f32)
    }

    fn eval_step(&mut self, examples: &[EncodedExample], batch: &Batch) -> EvalStep {
        let labels = Self::labels(examples, batch);
        let logits = self.model.forward_seq(&batch.ids, &batch.valid, batch.seq, false);
        let (l, _) = loss::softmax_cross_entropy(&logits, &labels);
        let probs = loss::positive_probabilities(&logits);
        let correct =
            probs.iter().zip(&labels).filter(|(p, &y)| (**p > 0.5) == (y == 1)).count() as f32;
        let n = batch.indices.len() as f32;
        EvalStep { loss: l, weight: n, correct, scored: n }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.model.visit_params(f);
    }

    fn state_dict(&mut self) -> StateDict {
        self.model.state_dict()
    }

    fn load_state_dict(&mut self, dict: &StateDict) -> usize {
        self.model.load_state_dict(dict)
    }
}

/// Fine-tunes a [`PragFormer`] on encoded examples.
pub struct Trainer {
    cfg: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Self { cfg }
    }

    /// Runs the shared engine with the fine-tuning objective. Returns
    /// per-epoch metrics and restores the model to the
    /// best-validation-loss epoch's weights before returning.
    pub fn fit(
        &self,
        model: &mut PragFormer,
        train: &[EncodedExample],
        valid: &[EncodedExample],
    ) -> Vec<EpochMetrics> {
        let max_len = model.config().max_len;
        TrainLoop::new(self.cfg.clone(), max_len).fit(&mut FineTune { model }, train, valid)
    }
}

/// Mean loss and accuracy over a split (eval mode), weighted by example
/// count — a short final chunk no longer biases the mean the way
/// per-batch averaging did.
pub fn evaluate(
    model: &mut PragFormer,
    examples: &[EncodedExample],
    batch_size: usize,
) -> (f32, f32) {
    let max_len = model.config().max_len;
    batching::evaluate(&mut FineTune { model }, examples, batch_size, max_len)
}

/// Synthesizes a linearly-separable toy set for tests, benches and doc
/// examples: label 1 sequences contain token `hot`, label 0 sequences do
/// not. Lengths are uniform in `[4, max_len - 2]`.
pub fn synthetic_examples(
    n: usize,
    max_len: usize,
    vocab: usize,
    hot: usize,
    seed: u64,
) -> Vec<EncodedExample> {
    use pragformer_tokenize::vocab::special;
    assert!(
        max_len >= 6,
        "synthetic_examples needs max_len >= 6 to fit CLS plus a 4..=max_len-2 token body \
         (got {max_len})"
    );
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|k| {
            let label = k % 2 == 1;
            let len = 4 + rng.below(max_len - 5);
            let mut ids = vec![special::CLS];
            for _ in 0..len - 1 {
                let mut t = special::COUNT + rng.below(vocab - special::COUNT);
                if t == hot {
                    t += 1; // keep negatives clean
                }
                ids.push(t.min(vocab - 1));
            }
            if label {
                let pos = 1 + rng.below(len - 1);
                ids[pos] = hot;
            }
            EncodedExample { ids, label }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    #[test]
    fn trainer_learns_hot_token_task() {
        let vocab = 24;
        let cfg = ModelConfig::tiny(vocab);
        let hot = 10;
        let train = synthetic_examples(120, cfg.max_len, vocab, hot, 1);
        let valid = synthetic_examples(40, cfg.max_len, vocab, hot, 2);
        let mut rng = SeededRng::new(3);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 12,
            batch_size: 16,
            lr: 5e-3,
            clip: 1.0,
            seed: 4,
            warmup_frac: 0.1,
            shuffle_window: 0,
        });
        let history = trainer.fit(&mut model, &train, &valid);
        assert_eq!(history.len(), 12);
        let final_acc = history.last().unwrap().valid_accuracy;
        let best_acc = history.iter().map(|h| h.valid_accuracy).fold(0.0f32, f32::max);
        assert!(best_acc > 0.85, "best accuracy {best_acc} (history {history:?})");
        assert!(final_acc > 0.6, "final accuracy collapsed: {history:?}");
        // Train loss must trend down.
        assert!(history.last().unwrap().train_loss < history[0].train_loss);
    }

    #[test]
    fn model_selection_restores_best_epoch() {
        let vocab = 24;
        let cfg = ModelConfig::tiny(vocab);
        let train = synthetic_examples(60, cfg.max_len, vocab, 9, 5);
        let valid = synthetic_examples(30, cfg.max_len, vocab, 9, 6);
        let mut rng = SeededRng::new(7);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 16,
            lr: 2e-3,
            clip: 1.0,
            seed: 8,
            warmup_frac: 0.0,
            shuffle_window: 0,
        });
        let history = trainer.fit(&mut model, &train, &valid);
        let best =
            history.iter().min_by(|a, b| a.valid_loss.total_cmp(&b.valid_loss)).unwrap().clone();
        let (loss_now, _) = evaluate(&mut model, &valid, 16);
        assert!(
            (loss_now - best.valid_loss).abs() < 1e-5,
            "restored loss {loss_now} vs best epoch {best:?}"
        );
    }

    #[test]
    fn fit_is_seed_deterministic() {
        let vocab = 20;
        let cfg = ModelConfig::tiny(vocab);
        let train = synthetic_examples(40, cfg.max_len, vocab, 9, 11);
        let valid = synthetic_examples(16, cfg.max_len, vocab, 9, 12);
        let run = || {
            let mut rng = SeededRng::new(13);
            let mut model = PragFormer::new(&cfg, &mut rng);
            let trainer = Trainer::new(TrainConfig {
                epochs: 2,
                batch_size: 8,
                lr: 1e-3,
                clip: 1.0,
                seed: 14,
                warmup_frac: 0.1,
                shuffle_window: 0,
            });
            trainer.fit(&mut model, &train, &valid)
        };
        assert_eq!(run(), run(), "same seed must reproduce the history exactly");
    }

    #[test]
    fn evaluate_weights_by_example_count() {
        // 17 examples at batch 16 used to average a 16-batch and a
        // 1-batch equally; the weighted mean must match a direct
        // per-example computation regardless of batch size.
        let vocab = 20;
        let cfg = ModelConfig::tiny(vocab);
        let examples = synthetic_examples(17, cfg.max_len, vocab, 9, 15);
        let mut rng = SeededRng::new(16);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let (l16, a16) = evaluate(&mut model, &examples, 16);
        let (l1, a1) = evaluate(&mut model, &examples, 1);
        assert!((l16 - l1).abs() < 1e-5, "batch-size-dependent loss: {l16} vs {l1}");
        assert_eq!(a16, a1);
    }

    #[test]
    fn synthetic_examples_are_balanced_and_sized() {
        let ex = synthetic_examples(100, 24, 30, 12, 9);
        assert_eq!(ex.len(), 100);
        let pos = ex.iter().filter(|e| e.label).count();
        assert_eq!(pos, 50);
        for e in &ex {
            assert!(e.valid() >= 4 && e.valid() <= 24);
            assert_eq!(e.ids.len(), e.valid(), "examples must be unpadded");
            let has_hot = e.ids.contains(&12);
            assert_eq!(has_hot, e.label);
        }
    }

    #[test]
    #[should_panic(expected = "max_len >= 6")]
    fn synthetic_examples_rejects_tiny_max_len() {
        let _ = synthetic_examples(4, 5, 10, 6, 1);
    }

    #[test]
    fn encoded_example_new_truncates_padding() {
        let e = EncodedExample::new(vec![2, 7, 8, 0, 0, 0], 3, true);
        assert_eq!(e.ids, vec![2, 7, 8]);
        assert_eq!(e.valid(), 3);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_panics() {
        let cfg = ModelConfig::tiny(10);
        let mut rng = SeededRng::new(1);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let trainer = Trainer::new(TrainConfig::default());
        let _ = trainer.fit(&mut model, &[], &[]);
    }
}
