//! Multi-head self-attention with padding masks and analytic backward.
//!
//! Activations are `[batch*seq, d_model]` tensors; per-sequence valid
//! lengths implement the padding mask: every query row attends only to
//! the first `valid[b]` key positions of its sequence. Rows beyond the
//! valid length still flow through (their queries exist) but nothing
//! downstream reads them — CLS pooling uses row 0 of each sequence.
//!
//! ## Batched execution
//!
//! The four projections (`Q`/`K`/`V`/output) run as single
//! `[batch·seq × d_model]` GEMMs regardless of batch size, which is where
//! batching pays: one 64-sequence forward does the same projection work
//! as one sequence, 64× wider. The per-`(batch, head)` score/context
//! tiles are inherently block-diagonal, so they are dispatched across the
//! persistent thread pool ([`pragformer_tensor::parallel`]) instead —
//! each pair's three small GEMMs run inline on one worker (nested
//! parallel calls don't re-dispatch), and the results merge in a fixed
//! serial order so outputs stay bitwise deterministic for any batch size.

use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::quantize::QuantizedActivations;
use pragformer_tensor::nn::{Layer, Linear, Param};
use pragformer_tensor::parallel::par_map_indexed;
use pragformer_tensor::{ops, scratch, Tensor};

/// Multi-head self-attention block (projections + scaled dot-product +
/// output projection).
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    n_heads: usize,
    d_model: usize,
    cache: Option<Cache>,
}

struct Cache {
    batch: usize,
    seq: usize,
    /// Projected Q/K/V, `[batch*seq, d_model]`.
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Attention probabilities per (batch, head): `[seq, seq]`.
    probs: Vec<Tensor>,
}

impl MultiHeadSelfAttention {
    /// Creates the four projection layers.
    pub fn new(name: &str, d_model: usize, n_heads: usize, rng: &mut SeededRng) -> Self {
        assert_eq!(d_model % n_heads, 0, "d_model must divide into heads");
        Self {
            wq: Linear::named(&format!("{name}.wq"), d_model, d_model, rng),
            wk: Linear::named(&format!("{name}.wk"), d_model, d_model, rng),
            wv: Linear::named(&format!("{name}.wv"), d_model, d_model, rng),
            wo: Linear::named(&format!("{name}.wo"), d_model, d_model, rng),
            n_heads,
            d_model,
            cache: None,
        }
    }

    /// Extracts head `h` of sequence `b` from a `[batch*seq, d_model]`
    /// tensor into a `[seq, d_head]` tile. The tile rides on
    /// [`scratch`] capacity (no zero fill); the forward pass gives it
    /// back once consumed, so steady-state tiles allocate nothing.
    fn head_tile(&self, x: &Tensor, b: usize, h: usize, seq: usize) -> Tensor {
        let dh = self.d_model / self.n_heads;
        let mut data = scratch::take(seq * dh);
        for t in 0..seq {
            let row = x.row(b * seq + t);
            data.extend_from_slice(&row[h * dh..(h + 1) * dh]);
        }
        Tensor::from_vec(&[seq, dh], data)
    }

    /// Like [`Self::head_tile`] but transposed: `[d_head, seq]`. Score
    /// GEMMs (`Q·Kᵀ` and `dCtx·Vᵀ`) consume the transposed tile so both
    /// operands stream contiguously through the GEMM inner loop.
    fn head_tile_t(&self, x: &Tensor, b: usize, h: usize, seq: usize) -> Tensor {
        let dh = self.d_model / self.n_heads;
        let mut data = scratch::take(dh * seq);
        for d in 0..dh {
            for t in 0..seq {
                data.push(x.row(b * seq + t)[h * dh + d]);
            }
        }
        Tensor::from_vec(&[dh, seq], data)
    }

    /// Adds a `[seq, d_head]` tile back into head `h` of sequence `b`.
    fn add_head_tile(&self, x: &mut Tensor, tile: &Tensor, b: usize, h: usize, seq: usize) {
        let dh = self.d_model / self.n_heads;
        for t in 0..seq {
            let src = tile.row(t);
            let dst = &mut x.row_mut(b * seq + t)[h * dh..(h + 1) * dh];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += *s;
            }
        }
    }

    /// Forward pass.
    ///
    /// `x` is `[batch*seq, d_model]`; `valid[b]` is the non-pad prefix of
    /// sequence `b` (≥ 1, counting CLS).
    pub fn forward(&mut self, x: &Tensor, batch: usize, seq: usize, valid: &[usize]) -> Tensor {
        let context = self.context_from(x, batch, seq, valid);
        self.wo.forward(&context, true)
    }

    /// Forward pass fused with the residual connection: returns
    /// `x + MHSA(x)`.
    ///
    /// On the int8 tier the output projection runs the fused
    /// dequantize+bias+residual epilogue, so the residual add costs no
    /// extra pass over the activations. On the f32 tiers this is exactly
    /// `x.add(&self.forward(..))` — the same bits as the unfused form.
    pub fn forward_residual(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        valid: &[usize],
    ) -> Tensor {
        let context = self.context_from(x, batch, seq, valid);
        if self.wo.is_quantized() {
            let qc = QuantizedActivations::quantize(&context);
            let out = self.wo.forward_quant_residual(&qc, x);
            qc.recycle();
            out
        } else {
            x.add(&self.wo.forward(&context, true))
        }
    }

    /// Projects Q/K/V, runs the masked score/context tiles, stores the
    /// backward cache, and returns the merged `[batch*seq, d_model]`
    /// context (pre output-projection).
    ///
    /// When the projection weights hold int8 copies, `x` is quantized
    /// **once** and all three projections consume the same
    /// [`QuantizedActivations`] — the per-layer requantization reuse whose
    /// bitwise equivalence to quantize-per-GEMM is pinned by the tensor
    /// crate's `int8_kernel_proptests`.
    fn context_from(&mut self, x: &Tensor, batch: usize, seq: usize, valid: &[usize]) -> Tensor {
        assert_eq!(x.rows(), batch * seq, "activation rows");
        assert_eq!(valid.len(), batch, "valid lengths");
        let (q, k, v) = if self.wq.is_quantized() {
            let qx = QuantizedActivations::quantize(x);
            let q = self.wq.forward_quant(&qx);
            let k = self.wk.forward_quant(&qx);
            let v = self.wv.forward_quant(&qx);
            qx.recycle();
            (q, k, v)
        } else {
            (self.wq.forward(x, true), self.wk.forward(x, true), self.wv.forward(x, true))
        };
        // (valid lengths are consumed immediately for masking; only the
        // projected tensors and probabilities are cached for backward.)
        let dh = self.d_model / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut context = Tensor::zeros(&[batch * seq, self.d_model]);
        // Score/context tiles per (batch, head) pair, computed across the
        // pool. Each pair is independent; the merge below runs serially in
        // a fixed order so results don't depend on scheduling.
        let tiles = par_map_indexed(batch * self.n_heads, 2, |bh| {
            let (b, h) = (bh / self.n_heads, bh % self.n_heads);
            let vb = valid[b].clamp(1, seq);
            let qt = self.head_tile(&q, b, h, seq);
            let ktt = self.head_tile_t(&k, b, h, seq);
            let vt = self.head_tile(&v, b, h, seq);
            // The per-call K/V tiles are too transient to pre-pack:
            // matmul_unpacked runs the simple kernel (bitwise identical
            // to the packed path) with zero pack builds per call.
            let mut scores = ops::matmul_unpacked(&qt, &ktt);
            scores.map_in_place(|s| s * scale);
            ops::softmax_rows_uniform(&mut scores, vb);
            let ctx = ops::matmul_unpacked(&scores, &vt);
            scratch::give(qt.into_data());
            scratch::give(ktt.into_data());
            scratch::give(vt.into_data());
            (scores, ctx)
        });
        let mut probs = Vec::with_capacity(batch * self.n_heads);
        for (bh, (scores, ctx)) in tiles.into_iter().enumerate() {
            let (b, h) = (bh / self.n_heads, bh % self.n_heads);
            self.add_head_tile(&mut context, &ctx, b, h, seq);
            scratch::give(ctx.into_data());
            probs.push(scores);
        }
        self.cache = Some(Cache { batch, seq, q, k, v, probs });
        context
    }

    /// Backward pass; returns gradient w.r.t. the input activations.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("attention backward before forward");
        let Cache { batch, seq, q, k, v, probs } = cache;
        let dh = self.d_model / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let dcontext = self.wo.backward(dy);
        let mut dq = Tensor::zeros(&[batch * seq, self.d_model]);
        let mut dk = Tensor::zeros(&[batch * seq, self.d_model]);
        let mut dv = Tensor::zeros(&[batch * seq, self.d_model]);
        // Per-(batch, head) gradient tiles across the pool, merged
        // serially (mirrors the forward pass).
        let tiles = par_map_indexed(batch * self.n_heads, 2, |bh| {
            let (b, h) = (bh / self.n_heads, bh % self.n_heads);
            let p = &probs[bh];
            let dctx = self.head_tile(&dcontext, b, h, seq);
            let qt = self.head_tile(&q, b, h, seq);
            let kt = self.head_tile(&k, b, h, seq);
            let vtt = self.head_tile_t(&v, b, h, seq);
            // dV = Pᵀ · dCtx
            let dvt = ops::matmul_tn(p, &dctx);
            // dP = dCtx · Vᵀ
            let dp = ops::matmul(&dctx, &vtt);
            // dS = softmax'(P, dP) (masked cols have P = 0 ⇒ dS = 0)
            let mut ds = ops::softmax_backward(p, &dp);
            ds.map_in_place(|s| s * scale);
            // dQ = dS · K ; dK = dSᵀ · Q
            let dqt = ops::matmul(&ds, &kt);
            let dkt = ops::matmul_tn(&ds, &qt);
            (dqt, dkt, dvt)
        });
        for (bh, (dqt, dkt, dvt)) in tiles.into_iter().enumerate() {
            let (b, h) = (bh / self.n_heads, bh % self.n_heads);
            self.add_head_tile(&mut dq, &dqt, b, h, seq);
            self.add_head_tile(&mut dk, &dkt, b, h, seq);
            self.add_head_tile(&mut dv, &dvt, b, h, seq);
        }
        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        dx
    }

    /// Visits the four projection layers' parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }

    /// Visits the four projection layers themselves (int8 cache
    /// management, weight accounting).
    pub fn for_each_linear(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }

    /// Attention probabilities of the last forward call, per
    /// `(batch, head)` in row-major order — used by explainability tools.
    pub fn last_probs(&self) -> Option<&[Tensor]> {
        self.cache.as_ref().map(|c| c.probs.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SeededRng {
        SeededRng::new(12)
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 8, 2, &mut r);
        let x = Tensor::randn(&[2 * 5, 8], 1.0, &mut r);
        let y = attn.forward(&x, 2, 5, &[5, 3]);
        assert_eq!(y.shape(), &[10, 8]);
        assert!(y.all_finite());
    }

    #[test]
    fn padding_positions_get_zero_attention() {
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 8, 2, &mut r);
        let x = Tensor::randn(&[4, 8], 1.0, &mut r);
        let _ = attn.forward(&x, 1, 4, &[2]);
        let probs = attn.last_probs().unwrap();
        for p in probs {
            for row in 0..4 {
                assert_eq!(p.at2(row, 2), 0.0);
                assert_eq!(p.at2(row, 3), 0.0);
                let s: f32 = p.row(row).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn changing_masked_token_does_not_change_valid_outputs() {
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 8, 2, &mut r);
        let x1 = Tensor::randn(&[4, 8], 1.0, &mut r);
        let mut x2 = x1.clone();
        // Perturb the padded position (index 3, valid = 3).
        for d in 0..8 {
            *x2.at2_mut(3, d) += 5.0;
        }
        let y1 = attn.forward(&x1, 1, 4, &[3]);
        let y2 = attn.forward(&x2, 1, 4, &[3]);
        for t in 0..3 {
            for d in 0..8 {
                assert!(
                    (y1.at2(t, d) - y2.at2(t, d)).abs() < 1e-5,
                    "valid row {t} affected by padding"
                );
            }
        }
    }

    #[test]
    fn gradcheck_attention_inputs() {
        // Finite-difference check on the input gradient for a tiny shape.
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 4, 2, &mut r);
        let x = Tensor::randn(&[3, 4], 0.5, &mut r);
        let (batch, seq, valid) = (1usize, 3usize, vec![3usize]);

        let loss = |attn: &mut MultiHeadSelfAttention, x: &Tensor| -> f32 {
            let y = attn.forward(x, batch, seq, &valid);
            y.data().iter().map(|v| v.sin()).sum()
        };
        let y = attn.forward(&x, batch, seq, &valid);
        let dy = y.map(|v| v.cos());
        let dx = attn.backward(&dy);

        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = loss(&mut attn, &xp);
            attn.cache = None;
            let fm = loss(&mut attn, &xm);
            attn.cache = None;
            let num = (fp - fm) / (2.0 * eps);
            let ana = dx.data()[i];
            let denom = num.abs().max(ana.abs()).max(1.0);
            assert!(
                ((num - ana) / denom).abs() < 3e-2,
                "input grad mismatch at {i}: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn gradcheck_attention_parameters() {
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 4, 2, &mut r);
        let x = Tensor::randn(&[3, 4], 0.5, &mut r);
        let (batch, seq, valid) = (1usize, 3usize, vec![3usize]);

        let y = attn.forward(&x, batch, seq, &valid);
        let dy = y.map(|v| v.cos());
        let _ = attn.backward(&dy);

        let mut grads: Vec<(u64, Tensor)> = Vec::new();
        attn.visit_params(&mut |p| grads.push((p.id, p.grad.clone())));

        let eps = 1e-2f32;
        for (pid, g) in grads {
            for i in [0usize, g.len() / 2, g.len() - 1] {
                let probe = |delta: f32, attn: &mut MultiHeadSelfAttention| {
                    attn.visit_params(&mut |p| {
                        if p.id == pid {
                            p.value.data_mut()[i] += delta;
                        }
                    });
                    let y = attn.forward(&x, batch, seq, &valid);
                    attn.cache = None;
                    attn.visit_params(&mut |p| {
                        if p.id == pid {
                            p.value.data_mut()[i] -= delta;
                        }
                    });
                    y.data().iter().map(|v| v.sin()).sum::<f32>()
                };
                let fp = probe(eps, &mut attn);
                let fm = probe(-eps, &mut attn);
                let num = (fp - fm) / (2.0 * eps);
                let ana = g.data()[i];
                let denom = num.abs().max(ana.abs()).max(1.0);
                assert!(
                    ((num - ana) / denom).abs() < 3e-2,
                    "param {pid} grad mismatch at {i}: {num} vs {ana}"
                );
            }
        }
    }
}
