//! Multi-head self-attention with padding masks, an analytic backward,
//! and a fused inference fast path.
//!
//! Activations are `[batch*seq, d_model]` tensors; per-sequence valid
//! lengths implement the padding mask: every query row attends only to
//! the first `valid[b]` key positions of its sequence. Rows beyond the
//! valid length still flow through (their queries exist) but nothing
//! downstream reads them — CLS pooling uses row 0 of each sequence.
//!
//! ## Execution model
//!
//! Every forward runs in three stages:
//!
//! 1. **Projection.** The Q/K/V projections run as `[batch·seq ×
//!    d_model]` GEMMs regardless of batch size, which is where batching
//!    pays. In training (and with the `PRAGFORMER_ATTN=unfused` kill
//!    switch thrown) they are three separate GEMMs through the
//!    [`Linear`] layers; at inference the fast path concatenates
//!    `wq|wk|wv` column-wise into one `[d_model, 3·d_model]` matrix
//!    (the private `FusedQkv` cache) — pre-packed panels on the f32
//!    tiers, an int8 copy
//!    on the quantized tier — so **one** GEMM produces `Q|K|V` side by
//!    side. Because every GEMM accumulates each output column in one
//!    ascending-`k` chain and quantization scales are per column,
//!    concatenating columns changes no per-column arithmetic: fused and
//!    unfused projections are **bitwise identical** on every kernel
//!    tier (pinned by `fused_attention_proptests`).
//! 2. **Score/context tiles.** The per-`(batch, head)` `[seq, seq]`
//!    score and `[seq, d_head]` context tiles are inherently
//!    block-diagonal, so they are dispatched across the persistent
//!    thread pool ([`pragformer_tensor::parallel`]) — each pair's small
//!    GEMMs run inline on one worker (nested parallel calls don't
//!    re-dispatch). Head tiles gather from the projection output by
//!    column offset (`Q` at `h·d_head`, `K` at `d_model + h·d_head`,
//!    `V` at `2·d_model + h·d_head` in the fused layout), ride
//!    [`scratch`] capacity, and go back to the arena as soon as they
//!    are consumed. The score epilogue on the fast path is the fused
//!    single-pass `·scale` + masked softmax
//!    ([`ops::softmax_rows_scaled_uniform`]); the legacy path keeps the
//!    two-pass `map_in_place` + [`ops::softmax_rows_uniform`] — also
//!    bitwise identical, per tier.
//! 3. **Merge.** Context tiles scatter-add into an **arena-backed**
//!    `[batch·seq, d_model]` output in a fixed serial order, so results
//!    stay bitwise deterministic for any batch size and worker split.
//!
//! ## Mode semantics (Train vs Infer)
//!
//! The `train` flag picks the mode. A **Train** forward stores the
//! backward cache (projected Q/K/V plus the per-`(batch, head)`
//! probability tiles, which [`MultiHeadSelfAttention::last_probs`]
//! exposes to explainability tools) and always takes the unfused path —
//! [`MultiHeadSelfAttention::backward`] differentiates the split
//! projections. An **Infer** forward is cache-free: it neither clones
//! into nor retains the backward cache (a previous train cache is
//! dropped), and every intermediate — projections, score tiles, context
//! tiles, the merged context — is recycled through the scratch arena,
//! so steady-state inference retains zero attention bytes and allocates
//! nothing.

use pragformer_obs as obs;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::quantize::{
    matmul_quant_reuse, QuantEpilogue, QuantizedActivations, QuantizedMatrix,
};
use pragformer_tensor::nn::{Layer, Linear, Param};
use pragformer_tensor::ops::{self, PackedWeights};
use pragformer_tensor::parallel::par_map_indexed;
use pragformer_tensor::{scratch, Tensor};
use std::sync::{Arc, OnceLock};

/// Counts one per-`(batch, head)` score/context tile into
/// `pragformer_attn_tile_dispatch_total{path}`.
#[inline]
fn record_tile_dispatch(fused: bool) {
    if !obs::enabled() {
        return;
    }
    static CELLS: [OnceLock<Arc<obs::Counter>>; 2] = [const { OnceLock::new() }; 2];
    CELLS[fused as usize]
        .get_or_init(|| {
            obs::counter(
                "pragformer_attn_tile_dispatch_total",
                "Per-(batch, head) attention score/context tiles dispatched",
                &[("path", if fused { "fused" } else { "split" })],
            )
        })
        .inc();
}

/// Counts one fused-QKV cache build into
/// `pragformer_attn_fused_qkv_builds_total` — a steady-state inference
/// loop shows a zero delta here once warm.
#[inline]
fn record_fused_build() {
    if !obs::enabled() {
        return;
    }
    static BUILDS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    BUILDS
        .get_or_init(|| {
            obs::counter(
                "pragformer_attn_fused_qkv_builds_total",
                "Fused QKV weight cache builds (pack or quantize of wq|wk|wv)",
                &[],
            )
        })
        .inc();
}

/// Counts one fused single-GEMM QKV projection into
/// `pragformer_attn_fused_qkv_hits_total`.
#[inline]
fn record_fused_hit() {
    if !obs::enabled() {
        return;
    }
    static HITS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    HITS.get_or_init(|| {
        obs::counter(
            "pragformer_attn_fused_qkv_hits_total",
            "QKV projections served by the fused single-GEMM fast path",
            &[],
        )
    })
    .inc();
}

/// Multi-head self-attention block (projections + scaled dot-product +
/// output projection). See the [module docs](self) for the execution
/// model and the Train/Infer mode semantics.
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    n_heads: usize,
    d_model: usize,
    cache: Option<Cache>,
    /// Inference-only fused `wq|wk|wv` cache; present iff the fast path
    /// is configured (see [`Self::configure_inference_caches`]).
    fused: Option<FusedQkv>,
}

struct Cache {
    batch: usize,
    seq: usize,
    /// Projected Q/K/V, `[batch*seq, d_model]`.
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Attention probabilities per (batch, head): `[seq, seq]`.
    probs: Vec<Tensor>,
}

/// The fused `[d_model, 3·d_model]` Q|K|V projection cache: the three
/// weight matrices concatenated column-wise (`Q` columns first, then
/// `K`, then `V`) plus the matching `[3·d_model]` bias. Like the
/// [`Linear`] caches it is inference-only, superseded by any parameter
/// mutation, and dropped by `visit_params`.
struct FusedQkv {
    /// Concatenated `bq|bk|bv`.
    bias: Tensor,
    form: FusedForm,
}

/// Which kernel path the fused QKV GEMM runs on — mirrors the
/// per-[`Linear`] cache lattice (int8 wins, then prepacked f32, then
/// pack-per-call f32).
enum FusedForm {
    /// Pre-packed f32 panels (zero-repack inference).
    Packed(PackedWeights),
    /// Plain concatenated f32 weights (pack-per-call, the
    /// `PRAGFORMER_PREPACK=off` regime).
    Plain(Tensor),
    /// Per-column int8 copy (quantized inference).
    Quant(QuantizedMatrix),
}

/// The projection stage's output: one fused `[batch*seq, 3·d_model]`
/// tensor, or the legacy three `[batch*seq, d_model]` tensors.
enum Proj {
    Fused(Tensor),
    Split(Tensor, Tensor, Tensor),
}

impl MultiHeadSelfAttention {
    /// Creates the four projection layers.
    pub fn new(name: &str, d_model: usize, n_heads: usize, rng: &mut SeededRng) -> Self {
        assert_eq!(d_model % n_heads, 0, "d_model must divide into heads");
        Self {
            wq: Linear::named(&format!("{name}.wq"), d_model, d_model, rng),
            wk: Linear::named(&format!("{name}.wk"), d_model, d_model, rng),
            wv: Linear::named(&format!("{name}.wv"), d_model, d_model, rng),
            wo: Linear::named(&format!("{name}.wo"), d_model, d_model, rng),
            n_heads,
            d_model,
            cache: None,
            fused: None,
        }
    }

    /// The concatenated `[d_model, 3·d_model]` Q|K|V weight matrix, on
    /// arena capacity (transient: the ensure methods consume or return
    /// it).
    fn fused_weight(&self) -> Tensor {
        let d = self.d_model;
        let mut data = scratch::take(d * 3 * d);
        for p in 0..d {
            data.extend_from_slice(self.wq.w.value.row(p));
            data.extend_from_slice(self.wk.w.value.row(p));
            data.extend_from_slice(self.wv.w.value.row(p));
        }
        Tensor::from_vec(&[d, 3 * d], data)
    }

    /// The concatenated `[3·d_model]` Q|K|V bias.
    fn fused_bias(&self) -> Tensor {
        let mut data = Vec::with_capacity(3 * self.d_model);
        data.extend_from_slice(self.wq.b.value.data());
        data.extend_from_slice(self.wk.b.value.data());
        data.extend_from_slice(self.wv.b.value.data());
        Tensor::from_vec(&[3 * self.d_model], data)
    }

    /// Builds (or keeps) the f32 fused QKV cache: pre-packed panels when
    /// `packed`, the plain concatenated matrix otherwise. Idempotent per
    /// form; switching forms rebuilds.
    fn ensure_fused_f32(&mut self, packed: bool) {
        let have = matches!(
            (&self.fused, packed),
            (Some(FusedQkv { form: FusedForm::Packed(_), .. }), true)
                | (Some(FusedQkv { form: FusedForm::Plain(_), .. }), false)
        );
        if have {
            return;
        }
        let w = self.fused_weight();
        let form = if packed {
            let pw = PackedWeights::pack(&w);
            scratch::give(w.into_data());
            FusedForm::Packed(pw)
        } else {
            FusedForm::Plain(w)
        };
        record_fused_build();
        self.fused = Some(FusedQkv { bias: self.fused_bias(), form });
    }

    /// Builds (or keeps) the int8 fused QKV cache. Per-column scales of
    /// the concatenation are exactly the three matrices' scales side by
    /// side, so fused int8 projections stay bitwise identical to three
    /// quantized GEMMs over the same quantized activations.
    fn ensure_fused_int8(&mut self) {
        if matches!(&self.fused, Some(FusedQkv { form: FusedForm::Quant(_), .. })) {
            return;
        }
        let w = self.fused_weight();
        let qw = QuantizedMatrix::quantize(&w);
        scratch::give(w.into_data());
        record_fused_build();
        self.fused = Some(FusedQkv { bias: self.fused_bias(), form: FusedForm::Quant(qw) });
    }

    /// Configures every inference weight cache this block holds in one
    /// idempotent pass: int8 / packed per-[`Linear`] caches, and the
    /// fused QKV cache when `fused`. While the fused cache is up the
    /// per-projection `wq`/`wk`/`wv` caches are redundant (the fused
    /// panels supersede them at — for `NR`-multiple `d_model` — the
    /// same byte cost) and are dropped; `wo` keeps its own cache in
    /// every regime because its epilogues are call-site specific.
    pub fn configure_inference_caches(&mut self, int8: bool, packed: bool, fused: bool) {
        if fused {
            if int8 {
                self.ensure_fused_int8();
            } else {
                self.ensure_fused_f32(packed);
            }
        } else {
            self.fused = None;
        }
        for lin in [&mut self.wq, &mut self.wk, &mut self.wv] {
            if int8 && !fused {
                lin.ensure_quantized();
            } else {
                lin.drop_quantized();
            }
            if packed && !int8 && !fused {
                lin.ensure_packed();
            } else {
                lin.drop_packed();
            }
        }
        if int8 {
            self.wo.ensure_quantized();
        } else {
            self.wo.drop_quantized();
        }
        if packed && !int8 {
            self.wo.ensure_packed();
        } else {
            self.wo.drop_packed();
        }
    }

    /// Whether the fused QKV fast-path cache is currently built.
    pub fn fused_active(&self) -> bool {
        self.fused.is_some()
    }

    /// Extracts a `[seq, d_head]` tile of sequence `b` starting at
    /// column `col0` from a `[batch*seq, *]` tensor — head `h` of a
    /// split projection sits at `col0 = h·d_head`; the fused layout
    /// adds a section offset (`0` / `d_model` / `2·d_model` for
    /// Q/K/V). The tile rides on [`scratch`] capacity (no zero fill);
    /// the forward pass gives it back once consumed, so steady-state
    /// tiles allocate nothing.
    fn head_tile(&self, x: &Tensor, b: usize, col0: usize, seq: usize) -> Tensor {
        let dh = self.d_model / self.n_heads;
        let mut data = scratch::take(seq * dh);
        for t in 0..seq {
            let row = x.row(b * seq + t);
            data.extend_from_slice(&row[col0..col0 + dh]);
        }
        Tensor::from_vec(&[seq, dh], data)
    }

    /// Like [`Self::head_tile`] but transposed: `[d_head, seq]`. Score
    /// GEMMs (`Q·Kᵀ` and `dCtx·Vᵀ`) consume the transposed tile so both
    /// operands stream contiguously through the GEMM inner loop.
    fn head_tile_t(&self, x: &Tensor, b: usize, col0: usize, seq: usize) -> Tensor {
        let dh = self.d_model / self.n_heads;
        let mut data = scratch::take(dh * seq);
        for d in 0..dh {
            for t in 0..seq {
                data.push(x.row(b * seq + t)[col0 + d]);
            }
        }
        Tensor::from_vec(&[dh, seq], data)
    }

    /// Adds a `[seq, d_head]` tile back into head `h` of sequence `b`.
    fn add_head_tile(&self, x: &mut Tensor, tile: &Tensor, b: usize, h: usize, seq: usize) {
        let dh = self.d_model / self.n_heads;
        for t in 0..seq {
            let src = tile.row(t);
            let dst = &mut x.row_mut(b * seq + t)[h * dh..(h + 1) * dh];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += *s;
            }
        }
    }

    /// Forward pass.
    ///
    /// `x` is `[batch*seq, d_model]`; `valid[b]` is the non-pad prefix of
    /// sequence `b` (≥ 1, counting CLS). `train` picks the mode (see the
    /// [module docs](self)): only a train forward retains the backward
    /// cache and probabilities.
    pub fn forward(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        valid: &[usize],
        train: bool,
    ) -> Tensor {
        let context = self.context_from(x, batch, seq, valid, train);
        let y = self.wo.forward(&context, train);
        scratch::give(context.into_data());
        y
    }

    /// Forward pass fused with the residual connection: returns
    /// `x + MHSA(x)`.
    ///
    /// On the int8 tier the output projection runs the fused
    /// dequantize+bias+residual epilogue, so the residual add costs no
    /// extra pass over the activations. On the f32 tiers this is exactly
    /// `x.add(&self.forward(..))` — the same bits as the unfused form.
    pub fn forward_residual(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        valid: &[usize],
        train: bool,
    ) -> Tensor {
        let context = self.context_from(x, batch, seq, valid, train);
        let out = if self.wo.is_quantized() {
            let qc = QuantizedActivations::quantize(&context);
            let out = self.wo.forward_quant_residual(&qc, x);
            qc.recycle();
            out
        } else {
            x.add(&self.wo.forward(&context, train))
        };
        scratch::give(context.into_data());
        out
    }

    /// Runs the projection stage: the fused single GEMM at inference
    /// when the fast-path cache is up, the legacy three GEMMs otherwise
    /// (with `x` quantized **once** for all three when the projection
    /// weights hold int8 copies — the quantize-once reuse pinned by the
    /// tensor crate's `int8_kernel_proptests`).
    fn project(&mut self, x: &Tensor, train: bool) -> Proj {
        if !train {
            if let Some(f) = &self.fused {
                record_fused_hit();
                let out = match &f.form {
                    FusedForm::Quant(qw) => {
                        let qx = QuantizedActivations::quantize(x);
                        let y = matmul_quant_reuse(&qx, qw, QuantEpilogue::Bias(f.bias.data()));
                        qx.recycle();
                        y
                    }
                    FusedForm::Packed(pw) => {
                        let mut y = ops::matmul_prepacked(x, pw);
                        ops::add_bias(&mut y, &f.bias);
                        y
                    }
                    FusedForm::Plain(w) => {
                        let mut y = ops::matmul(x, w);
                        ops::add_bias(&mut y, &f.bias);
                        y
                    }
                };
                return Proj::Fused(out);
            }
        }
        if self.wq.is_quantized() {
            let qx = QuantizedActivations::quantize(x);
            let q = self.wq.forward_quant(&qx);
            let k = self.wk.forward_quant(&qx);
            let v = self.wv.forward_quant(&qx);
            qx.recycle();
            Proj::Split(q, k, v)
        } else {
            Proj::Split(
                self.wq.forward(x, train),
                self.wk.forward(x, train),
                self.wv.forward(x, train),
            )
        }
    }

    /// Projects Q/K/V, runs the masked score/context tiles, and returns
    /// the merged `[batch*seq, d_model]` context (pre output-projection)
    /// on arena capacity. Train forwards store the backward cache;
    /// inference forwards recycle every intermediate (see the
    /// [module docs](self)).
    fn context_from(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        valid: &[usize],
        train: bool,
    ) -> Tensor {
        assert_eq!(x.rows(), batch * seq, "activation rows");
        assert_eq!(valid.len(), batch, "valid lengths");
        let d = self.d_model;
        let proj = self.project(x, train);
        let fused_path = matches!(proj, Proj::Fused(_));
        let dh = d / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut context =
            Tensor::from_vec(&[batch * seq, d], scratch::take_zeroed(batch * seq * d));
        // Score/context tiles per (batch, head) pair, computed across the
        // pool. Each pair is independent; the merge below runs serially in
        // a fixed order so results don't depend on scheduling.
        let tiles = par_map_indexed(batch * self.n_heads, 2, |bh| {
            let (b, h) = (bh / self.n_heads, bh % self.n_heads);
            let vb = valid[b].clamp(1, seq);
            record_tile_dispatch(fused_path);
            let (qt, ktt, vt) = match &proj {
                Proj::Fused(qkv) => (
                    self.head_tile(qkv, b, h * dh, seq),
                    self.head_tile_t(qkv, b, d + h * dh, seq),
                    self.head_tile(qkv, b, 2 * d + h * dh, seq),
                ),
                Proj::Split(q, k, v) => (
                    self.head_tile(q, b, h * dh, seq),
                    self.head_tile_t(k, b, h * dh, seq),
                    self.head_tile(v, b, h * dh, seq),
                ),
            };
            // The per-call K/V tiles are too transient to pre-pack:
            // matmul_unpacked runs the simple kernel (bitwise identical
            // to the packed path) with zero pack builds per call.
            let mut scores = ops::matmul_unpacked(&qt, &ktt);
            if fused_path {
                // Single-pass masked epilogue — bitwise identical to the
                // two-pass scale-then-softmax below on every tier.
                ops::softmax_rows_scaled_uniform(&mut scores, scale, vb);
            } else {
                scores.map_in_place(|s| s * scale);
                ops::softmax_rows_uniform(&mut scores, vb);
            }
            let ctx = ops::matmul_unpacked(&scores, &vt);
            scratch::give(qt.into_data());
            scratch::give(ktt.into_data());
            scratch::give(vt.into_data());
            if train {
                (Some(scores), ctx)
            } else {
                scratch::give(scores.into_data());
                (None, ctx)
            }
        });
        let mut probs = Vec::with_capacity(if train { batch * self.n_heads } else { 0 });
        for (bh, (scores, ctx)) in tiles.into_iter().enumerate() {
            let (b, h) = (bh / self.n_heads, bh % self.n_heads);
            self.add_head_tile(&mut context, &ctx, b, h, seq);
            scratch::give(ctx.into_data());
            if let Some(p) = scores {
                probs.push(p);
            }
        }
        // Train retains the backward cache; inference retains nothing —
        // not even a previous train forward's cache.
        self.cache = match proj {
            Proj::Split(q, k, v) if train => Some(Cache { batch, seq, q, k, v, probs }),
            Proj::Split(q, k, v) => {
                scratch::give(q.into_data());
                scratch::give(k.into_data());
                scratch::give(v.into_data());
                None
            }
            Proj::Fused(qkv) => {
                scratch::give(qkv.into_data());
                None
            }
        };
        context
    }

    /// Backward pass; returns gradient w.r.t. the input activations.
    /// Requires a preceding **train** forward (inference forwards are
    /// cache-free) and refuses to run while the inference-only fused
    /// cache is up, mirroring the [`Linear`] backward asserts.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(self.fused.is_none(), "attention backward with fused (inference-only) caches");
        let cache = self.cache.take().expect("attention backward before forward");
        let Cache { batch, seq, q, k, v, probs } = cache;
        let dh = self.d_model / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let dcontext = self.wo.backward(dy);
        let mut dq = Tensor::zeros(&[batch * seq, self.d_model]);
        let mut dk = Tensor::zeros(&[batch * seq, self.d_model]);
        let mut dv = Tensor::zeros(&[batch * seq, self.d_model]);
        // Per-(batch, head) gradient tiles across the pool, merged
        // serially (mirrors the forward pass).
        let tiles = par_map_indexed(batch * self.n_heads, 2, |bh| {
            let (b, h) = (bh / self.n_heads, bh % self.n_heads);
            let p = &probs[bh];
            let dctx = self.head_tile(&dcontext, b, h * dh, seq);
            let qt = self.head_tile(&q, b, h * dh, seq);
            let kt = self.head_tile(&k, b, h * dh, seq);
            let vtt = self.head_tile_t(&v, b, h * dh, seq);
            // dV = Pᵀ · dCtx
            let dvt = ops::matmul_tn(p, &dctx);
            // dP = dCtx · Vᵀ
            let dp = ops::matmul(&dctx, &vtt);
            // dS = softmax'(P, dP) (masked cols have P = 0 ⇒ dS = 0)
            let mut ds = ops::softmax_backward(p, &dp);
            ds.map_in_place(|s| s * scale);
            // dQ = dS · K ; dK = dSᵀ · Q
            let dqt = ops::matmul(&ds, &kt);
            let dkt = ops::matmul_tn(&ds, &qt);
            (dqt, dkt, dvt)
        });
        for (bh, (dqt, dkt, dvt)) in tiles.into_iter().enumerate() {
            let (b, h) = (bh / self.n_heads, bh % self.n_heads);
            self.add_head_tile(&mut dq, &dqt, b, h, seq);
            self.add_head_tile(&mut dk, &dkt, b, h, seq);
            self.add_head_tile(&mut dv, &dvt, b, h, seq);
        }
        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        dx
    }

    /// Visits the four projection layers' parameters. Handing out
    /// `&mut Param` can change the weights, so the fused QKV cache (a
    /// derived copy, like the per-layer int8/packed ones) is dropped.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fused = None;
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }

    /// Visits the four projection layers themselves (int8 cache
    /// management, weight accounting).
    pub fn for_each_linear(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }

    /// Attention probabilities of the last **train** forward, per
    /// `(batch, head)` in row-major order — used by explainability
    /// tools. `None` after an inference forward (cache-free mode).
    pub fn last_probs(&self) -> Option<&[Tensor]> {
        self.cache.as_ref().map(|c| c.probs.as_slice())
    }

    /// Bytes currently retained by this block's backward cache
    /// (projected Q/K/V plus every probability tile). Exactly zero after
    /// an inference forward — the invariant `profile_advise` asserts in
    /// steady state.
    pub fn retained_cache_bytes(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| {
            let probs: usize = c.probs.iter().map(Tensor::len).sum();
            (c.q.len() + c.k.len() + c.v.len() + probs) * 4
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SeededRng {
        SeededRng::new(12)
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 8, 2, &mut r);
        let x = Tensor::randn(&[2 * 5, 8], 1.0, &mut r);
        let y = attn.forward(&x, 2, 5, &[5, 3], false);
        assert_eq!(y.shape(), &[10, 8]);
        assert!(y.all_finite());
    }

    #[test]
    fn padding_positions_get_zero_attention() {
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 8, 2, &mut r);
        let x = Tensor::randn(&[4, 8], 1.0, &mut r);
        // Train mode: probabilities are only retained for backward /
        // explainability there.
        let _ = attn.forward(&x, 1, 4, &[2], true);
        let probs = attn.last_probs().unwrap();
        for p in probs {
            for row in 0..4 {
                assert_eq!(p.at2(row, 2), 0.0);
                assert_eq!(p.at2(row, 3), 0.0);
                let s: f32 = p.row(row).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn inference_forward_is_cache_free_and_bitwise_equal_to_train() {
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 8, 2, &mut r);
        let x = Tensor::randn(&[2 * 4, 8], 1.0, &mut r);
        let y_train = attn.forward(&x, 2, 4, &[4, 2], true);
        assert!(attn.last_probs().is_some(), "train forward must retain probs");
        attn.cache = None;
        let y_infer = attn.forward(&x, 2, 4, &[4, 2], false);
        assert_eq!(y_train, y_infer, "mode must not change bits");
        assert!(attn.last_probs().is_none(), "infer forward must retain nothing");
        // An inference forward must also drop a previous train cache.
        let _ = attn.forward(&x, 2, 4, &[4, 2], true);
        assert!(attn.last_probs().is_some());
        let _ = attn.forward(&x, 2, 4, &[4, 2], false);
        assert!(attn.last_probs().is_none(), "infer forward kept an older train cache");
    }

    #[test]
    fn fused_paths_are_bitwise_equal_to_split() {
        // The fused single-GEMM projection + single-pass softmax must be
        // bitwise identical to the legacy path in every cache regime,
        // including a d_model that is not a multiple of the pack width.
        for (d_model, n_heads, batch, seq) in [(8usize, 2usize, 2usize, 5usize), (12, 3, 1, 7)] {
            let mut r = SeededRng::new(d_model as u64);
            let mut attn = MultiHeadSelfAttention::new("a", d_model, n_heads, &mut r);
            let x = Tensor::randn(&[batch * seq, d_model], 1.0, &mut r);
            let valid: Vec<usize> = (0..batch).map(|b| seq - b).collect();
            let baseline = attn.forward(&x, batch, seq, &valid, false);
            for (int8, packed) in [(false, false), (false, true), (true, false)] {
                attn.configure_inference_caches(int8, packed, true);
                assert!(attn.fused_active());
                let fused = attn.forward(&x, batch, seq, &valid, false);
                if int8 {
                    // int8 quantizes; compare against the unfused int8 path.
                    attn.configure_inference_caches(true, false, false);
                    let split = attn.forward(&x, batch, seq, &valid, false);
                    assert_eq!(fused, split, "int8 fused != split (d={d_model})");
                } else {
                    assert_eq!(
                        fused, baseline,
                        "f32 fused(packed={packed}) != split (d={d_model})"
                    );
                }
            }
            attn.configure_inference_caches(false, false, false);
            assert!(!attn.fused_active());
        }
    }

    #[test]
    fn visit_params_drops_fused_cache() {
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 8, 2, &mut r);
        attn.configure_inference_caches(false, true, true);
        assert!(attn.fused_active());
        attn.visit_params(&mut |_| {});
        assert!(!attn.fused_active(), "fused cache survived visit_params");
    }

    #[test]
    fn changing_masked_token_does_not_change_valid_outputs() {
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 8, 2, &mut r);
        let x1 = Tensor::randn(&[4, 8], 1.0, &mut r);
        let mut x2 = x1.clone();
        // Perturb the padded position (index 3, valid = 3).
        for d in 0..8 {
            *x2.at2_mut(3, d) += 5.0;
        }
        let y1 = attn.forward(&x1, 1, 4, &[3], false);
        let y2 = attn.forward(&x2, 1, 4, &[3], false);
        for t in 0..3 {
            for d in 0..8 {
                assert!(
                    (y1.at2(t, d) - y2.at2(t, d)).abs() < 1e-5,
                    "valid row {t} affected by padding"
                );
            }
        }
    }

    #[test]
    fn gradcheck_attention_inputs() {
        // Finite-difference check on the input gradient for a tiny shape.
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 4, 2, &mut r);
        let x = Tensor::randn(&[3, 4], 0.5, &mut r);
        let (batch, seq, valid) = (1usize, 3usize, vec![3usize]);

        let loss = |attn: &mut MultiHeadSelfAttention, x: &Tensor| -> f32 {
            let y = attn.forward(x, batch, seq, &valid, true);
            y.data().iter().map(|v| v.sin()).sum()
        };
        let y = attn.forward(&x, batch, seq, &valid, true);
        let dy = y.map(|v| v.cos());
        let dx = attn.backward(&dy);

        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = loss(&mut attn, &xp);
            attn.cache = None;
            let fm = loss(&mut attn, &xm);
            attn.cache = None;
            let num = (fp - fm) / (2.0 * eps);
            let ana = dx.data()[i];
            let denom = num.abs().max(ana.abs()).max(1.0);
            assert!(
                ((num - ana) / denom).abs() < 3e-2,
                "input grad mismatch at {i}: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn gradcheck_attention_parameters() {
        let mut r = rng();
        let mut attn = MultiHeadSelfAttention::new("a", 4, 2, &mut r);
        let x = Tensor::randn(&[3, 4], 0.5, &mut r);
        let (batch, seq, valid) = (1usize, 3usize, vec![3usize]);

        let y = attn.forward(&x, batch, seq, &valid, true);
        let dy = y.map(|v| v.cos());
        let _ = attn.backward(&dy);

        let mut grads: Vec<(u64, Tensor)> = Vec::new();
        attn.visit_params(&mut |p| grads.push((p.id, p.grad.clone())));

        let eps = 1e-2f32;
        for (pid, g) in grads {
            for i in [0usize, g.len() / 2, g.len() - 1] {
                let probe = |delta: f32, attn: &mut MultiHeadSelfAttention| {
                    attn.visit_params(&mut |p| {
                        if p.id == pid {
                            p.value.data_mut()[i] += delta;
                        }
                    });
                    let y = attn.forward(&x, batch, seq, &valid, true);
                    attn.cache = None;
                    attn.visit_params(&mut |p| {
                        if p.id == pid {
                            p.value.data_mut()[i] -= delta;
                        }
                    });
                    y.data().iter().map(|v| v.sin()).sum::<f32>()
                };
                let fp = probe(eps, &mut attn);
                let fm = probe(-eps, &mut attn);
                let num = (fp - fm) / (2.0 * eps);
                let ana = g.data()[i];
                let denom = num.abs().max(ana.abs()).max(1.0);
                assert!(
                    ((num - ana) / denom).abs() < 3e-2,
                    "param {pid} grad mismatch at {i}: {num} vs {ana}"
                );
            }
        }
    }
}
