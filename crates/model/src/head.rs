//! The trunk/head split of the PragFormer classifier.
//!
//! §4.3's "FC layer" (two dense layers with a ReLU between them, plus
//! dropout) used to live inline in [`crate::PragFormer`]; it is now a
//! standalone [`ClassifierHead`] so several heads can share **one**
//! [`Trunk`] forward — the shared-trunk multi-task model
//! ([`crate::multitask::MultiTaskPragFormer`]) runs the encoder once per
//! snippet and only the cheap `[batch, d_model] → [batch, n_classes]`
//! head projections per task.
//!
//! [`Trunk`] owns everything below the heads: the embedding + encoder
//! stack ([`Encoder`]) and CLS pooling. Its `[batch, d_model]` CLS output
//! is the hand-off point: bitwise identical regardless of batch size and
//! padded length (the `pragformer_tensor::ops` row-determinism contract),
//! which is what lets heads, caches and serving layers treat it as a pure
//! function of the encoded id sequence.

use crate::config::ModelConfig;
use crate::encoder::Encoder;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::nn::{Activation, ActivationKind, Dropout, Layer, Linear, Param};
use pragformer_tensor::Tensor;

/// The shared lower stack: embeddings + encoder blocks + CLS pooling.
///
/// `forward_cls` runs the whole encoder and gathers row `b·seq` of each
/// sequence (the CLS position) into a `[batch, d_model]` matrix;
/// `backward_cls` scatters CLS gradients back and completes the encoder
/// backward pass. One trunk forward feeds any number of
/// [`ClassifierHead`]s.
pub struct Trunk {
    encoder: Encoder,
    cache: Option<(usize, usize)>,
}

impl Trunk {
    /// Builds a trunk from a config and seed.
    pub fn new(cfg: &ModelConfig, rng: &mut SeededRng) -> Self {
        Self { encoder: Encoder::new(cfg, rng), cache: None }
    }

    /// Wraps an already-built encoder (e.g. one restored from MLM
    /// pre-training).
    pub fn from_encoder(encoder: Encoder) -> Self {
        Self { encoder, cache: None }
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        self.encoder.config()
    }

    /// Read access to the underlying encoder (attention maps etc.).
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Forward over `batch × seq` flattened ids (`seq ≤ max_len`),
    /// returning the `[batch, d_model]` CLS representations.
    ///
    /// Per row, the result is **bitwise identical** for every batch size
    /// and every padded length `seq ≥ valid[b]` (see
    /// [`Encoder::forward_seq`]) — the property every head, cache and
    /// serving layer above this trunk relies on.
    pub fn forward_cls(
        &mut self,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
        train: bool,
    ) -> Tensor {
        let batch = ids.len() / seq.max(1);
        let h = self.encoder.forward_seq(ids, valid, seq, train);
        let d_model = self.config().d_model;
        let mut cls = Tensor::zeros(&[batch, d_model]);
        for b in 0..batch {
            cls.row_mut(b).copy_from_slice(h.row(b * seq));
        }
        self.cache = Some((batch, seq));
        cls
    }

    /// Backward from CLS gradients (`[batch, d_model]`) into every
    /// encoder parameter. Must follow a matching [`Trunk::forward_cls`].
    pub fn backward_cls(&mut self, dcls: &Tensor) {
        let (batch, seq) = self.cache.take().expect("Trunk backward before forward");
        let d_model = self.config().d_model;
        let mut dh = Tensor::zeros(&[batch * seq, d_model]);
        for b in 0..batch {
            dh.row_mut(b * seq).copy_from_slice(dcls.row(b));
        }
        self.encoder.backward(&dh);
    }

    /// Drops the forward cache (eval-mode forwards that skip backward).
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }

    /// Parameter traversal over the encoder stack.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.encoder.visit_params(f);
    }
}

/// One classification head: `fc1 → ReLU → dropout → fc2` over CLS
/// representations (§4.3's two-dense FC block).
///
/// Parameters are named `{name}.fc1` / `{name}.fc2`, so the single-head
/// [`crate::PragFormer`] (name `"head"`) keeps its historical state-dict
/// keys and the multi-task heads get distinct ones
/// (`head.directive.fc1`, …).
pub struct ClassifierHead {
    fc1: Linear,
    act: Activation,
    drop: Dropout,
    fc2: Linear,
}

impl ClassifierHead {
    /// Builds a head whose parameters are named under `name`.
    pub fn new(name: &str, cfg: &ModelConfig, rng: &mut SeededRng) -> Self {
        Self {
            fc1: Linear::named(&format!("{name}.fc1"), cfg.d_model, cfg.d_model, rng),
            act: Activation::new(ActivationKind::Relu),
            drop: Dropout::new(cfg.dropout, rng),
            fc2: Linear::named(&format!("{name}.fc2"), cfg.d_model, cfg.n_classes, rng),
        }
    }

    /// `[batch, d_model]` CLS rows → `[batch, n_classes]` logits.
    pub fn forward(&mut self, cls: &Tensor, train: bool) -> Tensor {
        let z = self.fc1.forward(cls, train);
        let z = self.act.forward(&z, train);
        let z = self.drop.forward(&z, train);
        self.fc2.forward(&z, train)
    }

    /// Backward from logit gradients; returns the CLS gradient.
    pub fn backward(&mut self, dlogits: &Tensor) -> Tensor {
        let dz = self.fc2.backward(dlogits);
        let dz = self.drop.backward(&dz);
        let dz = self.act.backward(&dz);
        self.fc1.backward(&dz)
    }

    /// Parameter traversal.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.act.visit_params(f);
        self.drop.visit_params(f);
        self.fc2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trunk_cls_shape_and_determinism() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(1);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        let ids: Vec<usize> = (0..3 * cfg.max_len).map(|i| i % 12).collect();
        let cls = trunk.forward_cls(&ids, &[5, 7, 9], cfg.max_len, false);
        trunk.clear_cache();
        assert_eq!(cls.shape(), &[3, cfg.d_model]);
        let again = trunk.forward_cls(&ids, &[5, 7, 9], cfg.max_len, false);
        trunk.clear_cache();
        assert_eq!(cls, again);
    }

    #[test]
    fn head_forward_backward_shapes() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(2);
        let mut head = ClassifierHead::new("head", &cfg, &mut rng);
        let cls = Tensor::full(&[4, cfg.d_model], 0.1);
        let logits = head.forward(&cls, true);
        assert_eq!(logits.shape(), &[4, cfg.n_classes]);
        let dcls = head.backward(&Tensor::full(&[4, cfg.n_classes], 0.5));
        assert_eq!(dcls.shape(), &[4, cfg.d_model]);
        let mut names = Vec::new();
        head.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(names.iter().any(|n| n == "head.fc1.w"));
        assert!(names.iter().any(|n| n == "head.fc2.b"));
    }

    #[test]
    fn head_names_follow_prefix() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(3);
        let mut head = ClassifierHead::new("head.private", &cfg, &mut rng);
        let mut names = Vec::new();
        head.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(!names.is_empty());
        for n in &names {
            assert!(n.starts_with("head.private.fc"), "unexpected param name {n}");
        }
    }
}
