//! The trunk/head split of the PragFormer classifier.
//!
//! §4.3's "FC layer" (two dense layers with a ReLU between them, plus
//! dropout) used to live inline in [`crate::PragFormer`]; it is now a
//! standalone [`ClassifierHead`] so several heads can share **one**
//! [`Trunk`] forward — the shared-trunk multi-task model
//! ([`crate::multitask::MultiTaskPragFormer`]) runs the encoder once per
//! snippet and only the cheap `[batch, d_model] → [batch, n_classes]`
//! head projections per task.
//!
//! [`Trunk`] owns everything below the heads: the embedding + encoder
//! stack ([`Encoder`]) and CLS pooling. Its `[batch, d_model]` CLS output
//! is the hand-off point: bitwise identical regardless of batch size and
//! padded length (the `pragformer_tensor::ops` row-determinism contract),
//! which is what lets heads, caches and serving layers treat it as a pure
//! function of the encoded id sequence.

use crate::config::ModelConfig;
use crate::encoder::Encoder;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::quantize::{
    QuantizedActivations, QuantizedEmbedding, QuantizedMatrix,
};
use pragformer_tensor::kernel::{active_tier, attn_fused_enabled, prepack_enabled, KernelTier};
use pragformer_tensor::nn::{Activation, ActivationKind, Dropout, Layer, Linear, Param};
use pragformer_tensor::ops::PackedWeights;
use pragformer_tensor::Tensor;

/// The shared lower stack: embeddings + encoder blocks + CLS pooling.
///
/// `forward_cls` runs the whole encoder and gathers row `b·seq` of each
/// sequence (the CLS position) into a `[batch, d_model]` matrix;
/// `backward_cls` scatters CLS gradients back and completes the encoder
/// backward pass. One trunk forward feeds any number of
/// [`ClassifierHead`]s.
pub struct Trunk {
    encoder: Encoder,
    cache: Option<(usize, usize)>,
    /// Per-model override of the int8 decision: `Some(true)` forces the
    /// quantized trunk, `Some(false)` forces f32, `None` follows the
    /// process-wide kernel tier. Model-local so parity harnesses can
    /// compare both paths without flipping the global tier under
    /// concurrently running models.
    int8_override: Option<bool>,
    /// Per-model override of the f32 pre-packing decision: `Some(true)`
    /// forces packed panels, `Some(false)` forces pack-per-call, `None`
    /// follows the process-wide [`prepack_enabled`] switch. Irrelevant
    /// while the int8 path is active (int8 wins).
    prepack_override: Option<bool>,
    /// Per-model override of the fused-attention decision: `Some(true)`
    /// forces the fused QKV + single-pass-softmax fast path at
    /// inference, `Some(false)` forces the legacy split path, `None`
    /// follows the process-wide [`attn_fused_enabled`] switch
    /// (`PRAGFORMER_ATTN`). Orthogonal to the int8/prepack axes — the
    /// fused cache takes whatever form the active tier implies.
    attn_fused_override: Option<bool>,
}

impl Trunk {
    /// Builds a trunk from a config and seed.
    pub fn new(cfg: &ModelConfig, rng: &mut SeededRng) -> Self {
        Self {
            encoder: Encoder::new(cfg, rng),
            cache: None,
            int8_override: None,
            prepack_override: None,
            attn_fused_override: None,
        }
    }

    /// Wraps an already-built encoder (e.g. one restored from MLM
    /// pre-training).
    pub fn from_encoder(encoder: Encoder) -> Self {
        Self {
            encoder,
            cache: None,
            int8_override: None,
            prepack_override: None,
            attn_fused_override: None,
        }
    }

    /// Sets the model-local int8 override (see the field docs). Takes
    /// effect on the next eval forward.
    pub fn set_int8_override(&mut self, force: Option<bool>) {
        self.int8_override = force;
    }

    /// The current model-local int8 override.
    pub fn int8_override(&self) -> Option<bool> {
        self.int8_override
    }

    /// Sets the model-local pre-packing override (see the field docs).
    /// Takes effect on the next eval forward.
    pub fn set_prepack_override(&mut self, force: Option<bool>) {
        self.prepack_override = force;
    }

    /// The current model-local pre-packing override.
    pub fn prepack_override(&self) -> Option<bool> {
        self.prepack_override
    }

    /// Sets the model-local fused-attention override (see the field
    /// docs). Takes effect on the next eval forward.
    pub fn set_attn_fused_override(&mut self, force: Option<bool>) {
        self.attn_fused_override = force;
    }

    /// The current model-local fused-attention override.
    pub fn attn_fused_override(&self) -> Option<bool> {
        self.attn_fused_override
    }

    /// Whether the next eval forward will run on pre-packed f32 panels
    /// (the override, or the process-wide switch when unset; always
    /// `false` when the int8 path wins).
    pub fn wants_prepack(&self) -> bool {
        self.inference_wants().1
    }

    /// The cache regimes an eval forward runs under: `(int8, packed,
    /// fused_attn)` after applying the model-local overrides on top of
    /// the process-wide switches (int8 wins over packed; fused attention
    /// is orthogonal and takes whichever form the winner implies).
    fn inference_wants(&self) -> (bool, bool, bool) {
        let int8 = self.int8_override.unwrap_or_else(|| active_tier() == KernelTier::Int8);
        let packed = !int8 && self.prepack_override.unwrap_or_else(prepack_enabled);
        let fused = self.attn_fused_override.unwrap_or_else(attn_fused_enabled);
        (int8, packed, fused)
    }

    /// Eagerly builds the weight caches the next eval forward would use
    /// (int8 copies, pre-packed f32 panels, fused QKV panels), moving
    /// the one-time pack/quantize cost out of the first request.
    pub fn prepack_for_inference(&mut self) {
        let (int8, packed, fused) = self.inference_wants();
        self.encoder.configure_inference_caches(int8, packed, fused);
        if pragformer_obs::enabled() && pragformer_obs::log_enabled(pragformer_obs::Level::Info) {
            let wb = self.weight_bytes();
            pragformer_obs::log_kv(
                pragformer_obs::Level::Info,
                "model.trunk",
                "trunk inference caches built",
                &[
                    ("path", if int8 { "int8" } else { "f32" }),
                    ("f32_bytes", &wb.f32_bytes.to_string()),
                    ("int8_bytes", &wb.int8_bytes.to_string()),
                    ("quant_scratch_bytes", &wb.quant_scratch_bytes.to_string()),
                ],
            );
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        self.encoder.config()
    }

    /// Read access to the underlying encoder (attention maps etc.).
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Bytes retained by the encoder's attention backward caches — zero
    /// after any inference forward (see [`crate::attention`]).
    pub fn retained_attention_bytes(&self) -> usize {
        self.encoder.retained_attention_bytes()
    }

    /// Forward over `batch × seq` flattened ids (`seq ≤ max_len`),
    /// returning the `[batch, d_model]` CLS representations.
    ///
    /// Per row, the result is **bitwise identical** for every batch size
    /// and every padded length `seq ≥ valid[b]` (see
    /// [`Encoder::forward_seq`]) — the property every head, cache and
    /// serving layer above this trunk relies on. Eval forwards exploit
    /// the same property from the inside: the padded length is clamped
    /// to the batch's longest valid prefix before the encoder runs, so
    /// rows the attention mask would discard are never embedded,
    /// projected, or normalized at all. The clamp is output-invisible
    /// by exactly the contract above (pinned by the padding-invariance
    /// proptests); training keeps the caller's padding because the
    /// backward cache records the caller-visible geometry.
    pub fn forward_cls(
        &mut self,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
        train: bool,
    ) -> Tensor {
        // Inference cache regimes are gated here (not in the layers):
        // eval forwards under the Int8 tier — or a model-local override
        // — run on int8 weight copies, f32 eval forwards on pre-packed
        // panels, and the attention blocks on fused QKV caches; training
        // always runs plain f32 with everything torn down (backward
        // refuses to run over inference caches). The configure pass is
        // idempotent and the copies are invalidated by any parameter
        // mutation, so this stays correct across train/eval
        // interleavings and checkpoint restores.
        if train {
            self.encoder.configure_inference_caches(false, false, false);
        } else {
            let (int8, packed, fused) = self.inference_wants();
            self.encoder.configure_inference_caches(int8, packed, fused);
        }
        let batch = ids.len() / seq.max(1);
        // Eval-only padded-length clamp (see the doc comment): run at
        // the longest valid prefix instead of the caller's padding.
        let mut run_seq = seq;
        let mut gathered: Vec<usize> = Vec::new();
        if !train && batch > 0 {
            let m = valid.iter().copied().max().unwrap_or(seq).clamp(1, seq.max(1));
            if m < seq {
                run_seq = m;
                if batch > 1 {
                    gathered.reserve(batch * m);
                    for b in 0..batch {
                        gathered.extend_from_slice(&ids[b * seq..b * seq + m]);
                    }
                }
            }
        }
        let run_ids: &[usize] = if run_seq == seq {
            ids
        } else if batch > 1 {
            &gathered
        } else {
            &ids[..run_seq]
        };
        let h = self.encoder.forward_seq(run_ids, valid, run_seq, train);
        let d_model = self.config().d_model;
        let mut cls = Tensor::zeros(&[batch, d_model]);
        for b in 0..batch {
            cls.row_mut(b).copy_from_slice(h.row(b * run_seq));
        }
        self.cache = Some((batch, run_seq));
        cls
    }

    /// Backward from CLS gradients (`[batch, d_model]`) into every
    /// encoder parameter. Must follow a matching [`Trunk::forward_cls`].
    pub fn backward_cls(&mut self, dcls: &Tensor) {
        let (batch, seq) = self.cache.take().expect("Trunk backward before forward");
        let d_model = self.config().d_model;
        let mut dh = Tensor::zeros(&[batch * seq, d_model]);
        for b in 0..batch {
            dh.row_mut(b * seq).copy_from_slice(dcls.row(b));
        }
        self.encoder.backward(&dh);
    }

    /// Drops the forward cache (eval-mode forwards that skip backward).
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }

    /// Parameter traversal over the encoder stack.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.encoder.visit_params(f);
    }

    /// Static weight-memory accounting for this trunk (f32 vs the int8
    /// tier). Pure shape arithmetic from the config — building the int8
    /// caches is not required and nothing is invalidated.
    pub fn weight_bytes(&self) -> TrunkWeightBytes {
        let cfg = self.config();
        let (d, dff) = (cfg.d_model, cfg.d_ff);
        let mut f32_bytes = 0usize;
        let mut int8_bytes = 0usize;
        let mut prepacked_bytes = 0usize;
        // Embedding tables: quantized per row under int8; never
        // pre-packed (lookups are gathers, not GEMMs).
        for (rows, dim) in [(cfg.vocab, d), (cfg.max_len, d)] {
            f32_bytes += rows * dim * 4;
            int8_bytes += QuantizedEmbedding::bytes_for(rows, dim);
        }
        // Weight matrices: quantized per output column under int8,
        // panel-packed (column-padded to the kernel's NR) when prepacked.
        let mats_per_layer = [(d, d), (d, d), (d, d), (d, d), (d, dff), (dff, d)];
        for (rows, cols) in mats_per_layer.into_iter().cycle().take(6 * cfg.n_layers) {
            f32_bytes += rows * cols * 4;
            int8_bytes += QuantizedMatrix::bytes_for(rows, cols);
            prepacked_bytes += PackedWeights::bytes_for(rows, cols);
        }
        // Biases and LayerNorm affine params stay f32 in both tiers:
        // embedding LN (2d) + per layer 4 attention biases (4d), two
        // LNs (4d), and the FFN biases (dff + d).
        let small = 2 * d + cfg.n_layers * (4 * d + 4 * d + dff + d);
        f32_bytes += small * 4;
        int8_bytes += small * 4;
        // Quantized-activation scratch at the worst-case batch of one
        // max_len sequence: the arena retains one d_model-wide i8 lane
        // (shared in turn by the Q/K/V input, the attention output and
        // the FFN input) plus the wider d_ff lane for the FFN midpoint.
        let quant_scratch_bytes = QuantizedActivations::bytes_for(cfg.max_len, d)
            + QuantizedActivations::bytes_for(cfg.max_len, dff);
        TrunkWeightBytes { f32_bytes, int8_bytes, prepacked_bytes, quant_scratch_bytes }
    }
}

/// Byte totals for a trunk's weights in the f32 and int8 tiers
/// (see [`Trunk::weight_bytes`]).
#[derive(Clone, Copy, Debug)]
pub struct TrunkWeightBytes {
    /// Total bytes of every trunk parameter held as f32.
    pub f32_bytes: usize,
    /// Total bytes with every weight matrix / embedding table in its
    /// int8 form (i8 values + f32 scales); biases and LN params stay f32.
    pub int8_bytes: usize,
    /// *Additional* bytes held while zero-repack inference is active:
    /// one panel-packed copy per weight matrix (`⌈n/NR⌉·k·NR` floats
    /// each). Embedding tables, biases and LN params hold no packed
    /// form, so this is ≈ +1× the weight-matrix share of `f32_bytes`.
    /// With the fused attention fast path active the per-layer Q/K/V
    /// panels are held as one `[d, 3d]` pack instead of three `[d, d]`
    /// packs — identical bytes for `NR`-multiple `d_model` (every real
    /// profile) and never more, so this total stays an exact/upper
    /// accounting either way.
    pub prepacked_bytes: usize,
    /// *Additional* bytes retained by the scratch arena's i8 lane while
    /// int8 inference is active: per-sequence quantized activations
    /// (values + per-row scales) at the worst-case `max_len` shape —
    /// one `d_model`-wide buffer and one `d_ff`-wide buffer. Scales with
    /// batch rows, not with weights, and is zero on the f32 tiers.
    pub quant_scratch_bytes: usize,
}

impl TrunkWeightBytes {
    /// `int8_bytes / f32_bytes` — the compression ratio the int8
    /// acceptance gate bounds (≤ 0.30 at evaluation scales).
    pub fn ratio(&self) -> f64 {
        self.int8_bytes as f64 / self.f32_bytes as f64
    }
}

/// One classification head: `fc1 → ReLU → dropout → fc2` over CLS
/// representations (§4.3's two-dense FC block).
///
/// Parameters are named `{name}.fc1` / `{name}.fc2`, so the single-head
/// [`crate::PragFormer`] (name `"head"`) keeps its historical state-dict
/// keys and the multi-task heads get distinct ones
/// (`head.directive.fc1`, …).
pub struct ClassifierHead {
    fc1: Linear,
    act: Activation,
    drop: Dropout,
    fc2: Linear,
}

impl ClassifierHead {
    /// Builds a head whose parameters are named under `name`.
    pub fn new(name: &str, cfg: &ModelConfig, rng: &mut SeededRng) -> Self {
        Self {
            fc1: Linear::named(&format!("{name}.fc1"), cfg.d_model, cfg.d_model, rng),
            act: Activation::new(ActivationKind::Relu),
            drop: Dropout::new(cfg.dropout, rng),
            fc2: Linear::named(&format!("{name}.fc2"), cfg.d_model, cfg.n_classes, rng),
        }
    }

    /// `[batch, d_model]` CLS rows → `[batch, n_classes]` logits.
    pub fn forward(&mut self, cls: &Tensor, train: bool) -> Tensor {
        let z = self.fc1.forward(cls, train);
        let z = self.act.forward(&z, train);
        let z = self.drop.forward(&z, train);
        self.fc2.forward(&z, train)
    }

    /// Backward from logit gradients; returns the CLS gradient.
    pub fn backward(&mut self, dlogits: &Tensor) -> Tensor {
        let dz = self.fc2.backward(dlogits);
        let dz = self.drop.backward(&dz);
        let dz = self.act.backward(&dz);
        self.fc1.backward(&dz)
    }

    /// Parameter traversal.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.act.visit_params(f);
        self.drop.visit_params(f);
        self.fc2.visit_params(f);
    }

    /// Visits both dense layers (cache management, weight accounting).
    pub fn for_each_linear(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        f(&mut self.fc1);
        f(&mut self.fc2);
    }

    /// Builds (or keeps) pre-packed panels for both dense layers. Heads
    /// always run f32 — the int8 tier quantizes only the trunk — so
    /// head packing applies under every kernel tier.
    pub fn ensure_packed(&mut self) {
        self.fc1.ensure_packed();
        self.fc2.ensure_packed();
    }

    /// Drops the packed copies; forwards return to pack-per-call f32.
    pub fn drop_packed(&mut self) {
        self.fc1.drop_packed();
        self.fc2.drop_packed();
    }

    /// Whether the packed copies are currently built.
    pub fn is_packed(&self) -> bool {
        self.fc1.is_packed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trunk_cls_shape_and_determinism() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(1);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        let ids: Vec<usize> = (0..3 * cfg.max_len).map(|i| i % 12).collect();
        let cls = trunk.forward_cls(&ids, &[5, 7, 9], cfg.max_len, false);
        trunk.clear_cache();
        assert_eq!(cls.shape(), &[3, cfg.d_model]);
        let again = trunk.forward_cls(&ids, &[5, 7, 9], cfg.max_len, false);
        trunk.clear_cache();
        assert_eq!(cls, again);
    }

    #[test]
    fn weight_bytes_f32_total_matches_param_traversal() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(5);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        let wb = trunk.weight_bytes();
        let mut traversed = 0usize;
        trunk.visit_params(&mut |p| traversed += p.value.len() * 4);
        assert_eq!(wb.f32_bytes, traversed, "static accounting drifted from real params");
        assert!(wb.int8_bytes < wb.f32_bytes);
        // Packed panels cover exactly the weight matrices (no embeddings,
        // no biases), padded up to the kernel's NR column multiple.
        let (d, dff) = (cfg.d_model, cfg.d_ff);
        let mat_f32 = cfg.n_layers * (4 * d * d + 2 * d * dff) * 4;
        assert!(
            wb.prepacked_bytes >= mat_f32 && wb.prepacked_bytes < wb.f32_bytes,
            "prepacked {} outside [{mat_f32}, {})",
            wb.prepacked_bytes,
            wb.f32_bytes
        );
        // Tiny dims carry proportionally more scale overhead than the
        // eval scales the ≤0.30 gate targets; still far below 1.
        assert!(wb.ratio() < 0.45, "ratio {}", wb.ratio());
        // Quantized-activation scratch: exactly the two worst-case
        // per-sequence buffers (values + f32 row scales).
        let expect = (cfg.max_len * (d + dff)) + 2 * cfg.max_len * 4;
        assert_eq!(wb.quant_scratch_bytes, expect, "quant scratch accounting drifted");
    }

    #[test]
    fn int8_override_quantizes_eval_and_training_restores_f32() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(6);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        let ids: Vec<usize> = (0..2 * cfg.max_len).map(|i| i % 12).collect();
        let valid = [7usize, 9];
        // Pin the f32 baseline model-locally so the test holds even when
        // the process-wide tier is forced to int8 (CI's int8 sweep).
        trunk.set_int8_override(Some(false));
        let f32_cls = trunk.forward_cls(&ids, &valid, cfg.max_len, false);
        trunk.clear_cache();
        assert!(!trunk.encoder().int8_active());
        trunk.set_int8_override(Some(true));
        let q_cls = trunk.forward_cls(&ids, &valid, cfg.max_len, false);
        trunk.clear_cache();
        assert!(trunk.encoder().int8_active(), "override must build int8 caches");
        assert_ne!(f32_cls, q_cls, "quantization should perturb some bits");
        for (a, b) in f32_cls.data().iter().zip(q_cls.data()) {
            assert!((a - b).abs() < 0.35, "int8 CLS {b} too far from f32 {a}");
        }
        // A training forward must tear the int8 caches down even while
        // the override is still set.
        let _ = trunk.forward_cls(&ids, &valid, cfg.max_len, true);
        trunk.clear_cache();
        assert!(!trunk.encoder().int8_active(), "train forward left int8 caches up");
        trunk.set_int8_override(Some(false));
        let back = trunk.forward_cls(&ids, &valid, cfg.max_len, false);
        trunk.clear_cache();
        assert_eq!(back, f32_cls, "f32 path must restore bitwise");
    }

    #[test]
    fn prepack_override_is_bitwise_and_training_restores() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(8);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        let ids: Vec<usize> = (0..2 * cfg.max_len).map(|i| i % 12).collect();
        let valid = [7usize, 9];
        // Prepack semantics are f32-only; pin the model off int8 so a
        // process-wide int8 tier (CI's int8 sweep) can't preempt them.
        trunk.set_int8_override(Some(false));
        trunk.set_prepack_override(Some(false));
        let plain = trunk.forward_cls(&ids, &valid, cfg.max_len, false);
        trunk.clear_cache();
        assert!(!trunk.encoder().packed_active());
        trunk.set_prepack_override(Some(true));
        assert!(trunk.wants_prepack());
        let packed = trunk.forward_cls(&ids, &valid, cfg.max_len, false);
        trunk.clear_cache();
        assert!(trunk.encoder().packed_active(), "override must build packed caches");
        // Same tier, same panel bytes: zero-repack must be bit-for-bit.
        assert_eq!(plain, packed, "prepacked CLS diverged from pack-per-call");
        // A training forward must tear the packed caches down even while
        // the override is still set (backward refuses to run with them).
        let _ = trunk.forward_cls(&ids, &valid, cfg.max_len, true);
        trunk.clear_cache();
        assert!(!trunk.encoder().packed_active(), "train forward left packed caches up");
    }

    #[test]
    fn attn_fused_override_is_bitwise_and_training_restores() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(10);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        let ids: Vec<usize> = (0..2 * cfg.max_len).map(|i| i % 12).collect();
        let valid = [7usize, 9];
        // Pin the model off int8 so the comparison is pure f32 under
        // every process-wide tier (CI's int8 sweep).
        trunk.set_int8_override(Some(false));
        trunk.set_attn_fused_override(Some(false));
        let split = trunk.forward_cls(&ids, &valid, cfg.max_len, false);
        trunk.clear_cache();
        assert!(!trunk.encoder().attn_fused_active());
        trunk.set_attn_fused_override(Some(true));
        let fused = trunk.forward_cls(&ids, &valid, cfg.max_len, false);
        trunk.clear_cache();
        assert!(trunk.encoder().attn_fused_active(), "override must build fused caches");
        // One QKV GEMM + single-pass softmax must not move a bit.
        assert_eq!(split, fused, "fused attention CLS diverged from split path");
        // A training forward must tear the fused caches down even while
        // the override is still set (backward refuses to run with them).
        let _ = trunk.forward_cls(&ids, &valid, cfg.max_len, true);
        trunk.clear_cache();
        assert!(!trunk.encoder().attn_fused_active(), "train forward left fused caches up");
    }

    #[test]
    fn prepack_for_inference_packs_eagerly() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(9);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        // Start pinned to f32 so eager packing is what's under test even
        // when the process-wide tier is forced to int8 (CI's int8 sweep).
        trunk.set_int8_override(Some(false));
        trunk.set_prepack_override(Some(true));
        assert!(!trunk.encoder().packed_active());
        trunk.prepack_for_inference();
        assert!(trunk.encoder().packed_active(), "eager packing did nothing");
        // int8 wins: with the int8 override set, eager packing builds
        // the quantized caches instead of f32 panels.
        trunk.set_int8_override(Some(true));
        assert!(!trunk.wants_prepack());
        trunk.prepack_for_inference();
        assert!(trunk.encoder().int8_active(), "int8 override must quantize eagerly");
    }

    #[test]
    fn int8_cls_rows_are_batch_invariant() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(7);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        trunk.set_int8_override(Some(true));
        let ids: Vec<usize> = (0..3 * cfg.max_len).map(|i| (i * 3 + 1) % 12).collect();
        let valid = [5usize, 8, 11];
        let batched = trunk.forward_cls(&ids, &valid, cfg.max_len, false);
        trunk.clear_cache();
        for b in 0..3 {
            let one = trunk.forward_cls(
                &ids[b * cfg.max_len..(b + 1) * cfg.max_len],
                &valid[b..b + 1],
                cfg.max_len,
                false,
            );
            trunk.clear_cache();
            assert_eq!(one.row(0), batched.row(b), "int8 CLS row {b} not batch invariant");
        }
    }

    #[test]
    fn head_forward_backward_shapes() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(2);
        let mut head = ClassifierHead::new("head", &cfg, &mut rng);
        let cls = Tensor::full(&[4, cfg.d_model], 0.1);
        let logits = head.forward(&cls, true);
        assert_eq!(logits.shape(), &[4, cfg.n_classes]);
        let dcls = head.backward(&Tensor::full(&[4, cfg.n_classes], 0.5));
        assert_eq!(dcls.shape(), &[4, cfg.d_model]);
        let mut names = Vec::new();
        head.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(names.iter().any(|n| n == "head.fc1.w"));
        assert!(names.iter().any(|n| n == "head.fc2.b"));
    }

    #[test]
    fn head_names_follow_prefix() {
        let cfg = ModelConfig::tiny(12);
        let mut rng = SeededRng::new(3);
        let mut head = ClassifierHead::new("head.private", &cfg, &mut rng);
        let mut names = Vec::new();
        head.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(!names.is_empty());
        for n in &names {
            assert!(n.starts_with("head.private.fc"), "unexpected param name {n}");
        }
    }
}
