//! Masked-language-model pre-training (the DeepSCC substitution).
//!
//! The paper initializes PragFormer from DeepSCC, a RoBERTa fine-tuned on
//! source code with the MLM objective. That checkpoint cannot be shipped,
//! so we reproduce the *mechanism*: pre-train the same encoder on
//! unlabeled code token streams with BERT's 15% masking policy
//! (80% `<mask>`, 10% random token, 10% unchanged), then hand the weights
//! to the classifier. EXPERIMENTS.md §A1 measures the benefit against a
//! from-scratch baseline.

use crate::encoder::Encoder;
use crate::ModelConfig;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::loss;
use pragformer_tensor::nn::{Layer, Linear, Param};
use pragformer_tensor::optim::AdamW;
use pragformer_tokenize::vocab::special;

/// Encoder plus vocabulary-projection head for MLM.
pub struct MlmModel {
    /// The shared encoder (moved into a classifier after pre-training).
    pub encoder: Encoder,
    head: Linear,
}

/// Masking policy knobs (BERT defaults).
#[derive(Clone, Copy, Debug)]
pub struct MaskPolicy {
    /// Fraction of (non-pad, non-CLS) positions selected for prediction.
    pub mask_fraction: f32,
    /// Of the selected: probability of replacing with `<mask>`.
    pub replace_with_mask: f32,
    /// Of the selected: probability of replacing with a random token.
    pub replace_with_random: f32,
}

impl Default for MaskPolicy {
    fn default() -> Self {
        Self { mask_fraction: 0.15, replace_with_mask: 0.8, replace_with_random: 0.1 }
    }
}

impl MlmModel {
    /// Builds an encoder + MLM head.
    pub fn new(cfg: &ModelConfig, rng: &mut SeededRng) -> Self {
        Self {
            encoder: Encoder::new(cfg, rng),
            head: Linear::named("mlm.head", cfg.d_model, cfg.vocab, rng),
        }
    }

    /// Applies the masking policy to a batch of id sequences.
    ///
    /// Returns the corrupted ids and per-position targets (`Some(original)`
    /// at masked positions).
    pub fn mask_batch(
        &self,
        ids: &[usize],
        valid: &[usize],
        policy: &MaskPolicy,
        rng: &mut SeededRng,
    ) -> (Vec<usize>, Vec<Option<usize>>) {
        let seq = self.encoder.config().max_len;
        let vocab = self.encoder.config().vocab;
        let mut corrupted = ids.to_vec();
        let mut targets = vec![None; ids.len()];
        for (b, &vb) in valid.iter().enumerate() {
            // Skip position 0 (CLS); mask only real tokens.
            for t in 1..vb.min(seq) {
                let idx = b * seq + t;
                if rng.bernoulli(policy.mask_fraction) {
                    targets[idx] = Some(ids[idx]);
                    let u = rng.uniform();
                    if u < policy.replace_with_mask {
                        corrupted[idx] = special::MASK;
                    } else if u < policy.replace_with_mask + policy.replace_with_random {
                        corrupted[idx] = special::COUNT + rng.below(vocab - special::COUNT);
                    } // else: keep original token
                }
            }
        }
        (corrupted, targets)
    }

    /// One MLM training step; returns the masked cross-entropy loss.
    pub fn train_step(
        &mut self,
        ids: &[usize],
        valid: &[usize],
        policy: &MaskPolicy,
        opt: &mut AdamW,
        rng: &mut SeededRng,
    ) -> f32 {
        let (corrupted, targets) = self.mask_batch(ids, valid, policy, rng);
        self.visit_params(&mut |p| p.zero_grad());
        let h = self.encoder.forward(&corrupted, valid, true);
        let logits = self.head.forward(&h, true);
        let (l, dlogits) = loss::masked_cross_entropy(&logits, &targets);
        if l > 0.0 {
            let dh = self.head.backward(&dlogits);
            self.encoder.backward(&dh);
            opt.begin_step();
            self.visit_params(&mut |p| opt.update(p));
        }
        l
    }

    /// Evaluation loss on a batch without updating weights.
    pub fn eval_loss(
        &mut self,
        ids: &[usize],
        valid: &[usize],
        policy: &MaskPolicy,
        rng: &mut SeededRng,
    ) -> f32 {
        let (corrupted, targets) = self.mask_batch(ids, valid, policy, rng);
        let h = self.encoder.forward(&corrupted, valid, false);
        let logits = self.head.forward(&h, false);
        loss::masked_cross_entropy(&logits, &targets).0
    }

    /// Parameter traversal (encoder + head).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.encoder.visit_params(f);
        self.head.visit_params(f);
    }

    /// Extracts the pre-trained encoder weights as a state dict, ready for
    /// [`crate::PragFormer::load_state_dict`] (head weights excluded — the
    /// classifier head trains fresh, like the paper's fine-tuning).
    pub fn encoder_state(&mut self) -> pragformer_tensor::serialize::StateDict {
        let mut dict = pragformer_tensor::serialize::StateDict::new();
        self.encoder.visit_params(&mut |p| dict.capture(p));
        dict
    }
}

/// Pre-trains an encoder on token-id sequences; returns the state dict.
///
/// `sequences` are already-encoded `(ids, valid)` pairs of length
/// `cfg.max_len`. Runs `epochs` passes with mini-batches of `batch_size`.
pub fn pretrain(
    cfg: &ModelConfig,
    sequences: &[(Vec<usize>, usize)],
    epochs: usize,
    batch_size: usize,
    lr: f32,
    seed: u64,
) -> (pragformer_tensor::serialize::StateDict, Vec<f32>) {
    let mut rng = SeededRng::new(seed);
    let mut model = MlmModel::new(cfg, &mut rng);
    let mut opt = AdamW::new(lr);
    let policy = MaskPolicy::default();
    let mut order: Vec<usize> = (0..sequences.len()).collect();
    let mut epoch_losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        rng.shuffle(&mut order);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(batch_size.max(1)) {
            let mut ids = Vec::with_capacity(chunk.len() * cfg.max_len);
            let mut valid = Vec::with_capacity(chunk.len());
            for &i in chunk {
                ids.extend_from_slice(&sequences[i].0);
                valid.push(sequences[i].1);
            }
            total += model.train_step(&ids, &valid, &policy, &mut opt, &mut rng);
            batches += 1;
        }
        epoch_losses.push(if batches == 0 { 0.0 } else { total / batches as f32 });
    }
    (model.encoder_state(), epoch_losses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_sequences(cfg: &ModelConfig, n: usize) -> Vec<(Vec<usize>, usize)> {
        // Deterministic patterned sequences: abababab…
        (0..n)
            .map(|s| {
                let a = special::COUNT + (s % 3);
                let b = special::COUNT + 3 + (s % 2);
                let len = cfg.max_len - 2;
                let mut ids = vec![special::CLS];
                for t in 0..len {
                    ids.push(if t % 2 == 0 { a } else { b });
                }
                ids.resize(cfg.max_len, special::PAD);
                (ids, len + 1)
            })
            .collect()
    }

    #[test]
    fn masking_respects_cls_and_padding() {
        let cfg = ModelConfig::tiny(16);
        let mut rng = SeededRng::new(1);
        let model = MlmModel::new(&cfg, &mut rng);
        let seqs = toy_sequences(&cfg, 2);
        let mut ids = Vec::new();
        let mut valid = Vec::new();
        for (s, v) in &seqs {
            ids.extend_from_slice(s);
            valid.push(*v);
        }
        let policy = MaskPolicy { mask_fraction: 1.0, ..Default::default() };
        let (corrupted, targets) = model.mask_batch(&ids, &valid, &policy, &mut rng);
        for (b, &vb) in valid.iter().enumerate() {
            let base = b * cfg.max_len;
            assert_eq!(corrupted[base], special::CLS, "CLS corrupted");
            assert!(targets[base].is_none());
            for t in vb..cfg.max_len {
                assert_eq!(corrupted[base + t], special::PAD, "padding corrupted");
                assert!(targets[base + t].is_none());
            }
            // All real positions are selected at fraction 1.0.
            for t in 1..vb {
                assert!(targets[base + t].is_some());
            }
        }
    }

    #[test]
    fn mask_fraction_zero_is_identity() {
        let cfg = ModelConfig::tiny(16);
        let mut rng = SeededRng::new(2);
        let model = MlmModel::new(&cfg, &mut rng);
        let seqs = toy_sequences(&cfg, 1);
        let policy = MaskPolicy { mask_fraction: 0.0, ..Default::default() };
        let (corrupted, targets) = model.mask_batch(&seqs[0].0, &[seqs[0].1], &policy, &mut rng);
        assert_eq!(corrupted, seqs[0].0);
        assert!(targets.iter().all(Option::is_none));
    }

    #[test]
    fn pretraining_reduces_loss() {
        let cfg = ModelConfig::tiny(16);
        let seqs = toy_sequences(&cfg, 24);
        let (_, losses) = pretrain(&cfg, &seqs, 8, 8, 3e-3, 7);
        assert!(losses.len() == 8);
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first * 0.8, "MLM loss did not fall: {first} -> {last} ({losses:?})");
    }

    #[test]
    fn pretrained_state_loads_into_classifier() {
        let cfg = ModelConfig::tiny(16);
        let seqs = toy_sequences(&cfg, 8);
        let (state, _) = pretrain(&cfg, &seqs, 1, 4, 1e-3, 8);
        let mut rng = SeededRng::new(9);
        let mut clf = crate::PragFormer::new(&cfg, &mut rng);
        let restored = clf.load_state_dict(&state);
        assert!(restored > 5, "only {restored} encoder params restored");
    }
}
