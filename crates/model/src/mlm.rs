//! Masked-language-model pre-training (the DeepSCC substitution).
//!
//! The paper initializes PragFormer from DeepSCC, a RoBERTa fine-tuned on
//! source code with the MLM objective. That checkpoint cannot be shipped,
//! so we reproduce the *mechanism*: pre-train the same encoder on
//! unlabeled code token streams with BERT's 15% masking policy
//! (80% `<mask>`, 10% random token, 10% unchanged), then hand the weights
//! to the classifier. EXPERIMENTS.md §A1 measures the benefit against a
//! from-scratch baseline.
//!
//! Pre-training runs as a second [`Objective`] on the shared
//! length-bucketed engine ([`crate::batching::TrainLoop`]), which gives
//! it the gradient clipping, warmup/decay schedule and validation-based
//! checkpoint selection the fine-tuning loop always had — and the same
//! bucketed-batch wall-clock win. Masking randomness is drawn **per
//! valid position** (never for padding), so the corruption pattern and
//! the RNG stream are independent of the padded length, exactly like the
//! engine's dropout contract.

use crate::batching::{Batch, EvalStep, Objective, TrainExample, TrainLoop};
use crate::encoder::Encoder;
use crate::ModelConfig;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::loss;
use pragformer_tensor::nn::{Layer, Linear, Param};
use pragformer_tensor::serialize::StateDict;
use pragformer_tokenize::vocab::special;

pub use crate::batching::{EpochMetrics, TrainConfig};

/// Encoder plus vocabulary-projection head for MLM.
pub struct MlmModel {
    /// The shared encoder (moved into a classifier after pre-training).
    pub encoder: Encoder,
    head: Linear,
}

/// Masking policy knobs (BERT defaults).
#[derive(Clone, Copy, Debug)]
pub struct MaskPolicy {
    /// Fraction of (non-pad, non-CLS) positions selected for prediction.
    pub mask_fraction: f32,
    /// Of the selected: probability of replacing with `<mask>`.
    pub replace_with_mask: f32,
    /// Of the selected: probability of replacing with a random token.
    pub replace_with_random: f32,
}

impl Default for MaskPolicy {
    fn default() -> Self {
        Self { mask_fraction: 0.15, replace_with_mask: 0.8, replace_with_random: 0.1 }
    }
}

/// One unlabeled pre-training sequence: the valid token prefix only
/// (CLS-led, unpadded).
#[derive(Clone, Debug)]
pub struct MlmSequence {
    /// Valid token ids (no padding).
    pub ids: Vec<usize>,
}

impl MlmSequence {
    /// Builds a sequence from a possibly-padded `(ids, valid)` encoding.
    pub fn new(mut ids: Vec<usize>, valid: usize) -> Self {
        ids.truncate(valid);
        Self { ids }
    }
}

impl TrainExample for MlmSequence {
    fn token_ids(&self) -> &[usize] {
        &self.ids
    }
}

impl MlmModel {
    /// Builds an encoder + MLM head.
    pub fn new(cfg: &ModelConfig, rng: &mut SeededRng) -> Self {
        Self {
            encoder: Encoder::new(cfg, rng),
            head: Linear::named("mlm.head", cfg.d_model, cfg.vocab, rng),
        }
    }

    /// Applies the masking policy to a batch of id sequences padded to an
    /// explicit `seq`.
    ///
    /// Returns the corrupted ids and per-position targets (`Some(original)`
    /// at masked positions). Randomness is drawn only for valid, non-CLS
    /// positions, so for a fixed RNG state the corruption of the valid
    /// prefix is bitwise independent of `seq`.
    pub fn mask_batch(
        &self,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
        policy: &MaskPolicy,
        rng: &mut SeededRng,
    ) -> (Vec<usize>, Vec<Option<usize>>) {
        let vocab = self.encoder.config().vocab;
        let mut corrupted = ids.to_vec();
        let mut targets = vec![None; ids.len()];
        for (b, &vb) in valid.iter().enumerate() {
            // Skip position 0 (CLS); mask only real tokens.
            for t in 1..vb.min(seq) {
                let idx = b * seq + t;
                if rng.bernoulli(policy.mask_fraction) {
                    targets[idx] = Some(ids[idx]);
                    let u = rng.uniform();
                    if u < policy.replace_with_mask {
                        corrupted[idx] = special::MASK;
                    } else if u < policy.replace_with_mask + policy.replace_with_random {
                        corrupted[idx] = special::COUNT + rng.below(vocab - special::COUNT);
                    } // else: keep original token
                }
            }
        }
        (corrupted, targets)
    }

    /// One MLM gradient step over a batch padded to `seq`: zeroes grads,
    /// masks, runs forward/backward. Returns `(masked cross-entropy,
    /// masked position count)`; a zero count leaves all gradients zero.
    /// The optimizer is owned by the engine, not this method.
    pub fn train_step_seq(
        &mut self,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
        policy: &MaskPolicy,
        rng: &mut SeededRng,
    ) -> (f32, usize) {
        let (corrupted, targets) = self.mask_batch(ids, valid, seq, policy, rng);
        self.visit_params(&mut |p| p.zero_grad());
        let h = self.encoder.forward_seq(&corrupted, valid, seq, true);
        let logits = self.head.forward(&h, true);
        let (l, dlogits) = loss::masked_cross_entropy(&logits, &targets);
        let masked = targets.iter().filter(|t| t.is_some()).count();
        if masked > 0 {
            let dh = self.head.backward(&dlogits);
            self.encoder.backward(&dh);
        }
        (l, masked)
    }

    /// Eval-mode masked loss and top-1 accuracy over a batch padded to
    /// `seq`. Returns `(loss, masked positions, correct predictions)`.
    pub fn eval_masked(
        &mut self,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
        policy: &MaskPolicy,
        rng: &mut SeededRng,
    ) -> (f32, usize, usize) {
        let (corrupted, targets) = self.mask_batch(ids, valid, seq, policy, rng);
        let h = self.encoder.forward_seq(&corrupted, valid, seq, false);
        let logits = self.head.forward(&h, false);
        let (l, _) = loss::masked_cross_entropy(&logits, &targets);
        let mut masked = 0usize;
        let mut correct = 0usize;
        for (r, t) in targets.iter().enumerate() {
            if let Some(y) = *t {
                masked += 1;
                let row = logits.row(r);
                let argmax =
                    row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map_or(0, |(i, _)| i);
                if argmax == y {
                    correct += 1;
                }
            }
        }
        (l, masked, correct)
    }

    /// Parameter traversal (encoder + head).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.encoder.visit_params(f);
        self.head.visit_params(f);
    }

    /// Captures all weights (encoder + head) into a [`StateDict`] — the
    /// engine's best-checkpoint snapshot.
    pub fn state_dict(&mut self) -> StateDict {
        let mut dict = StateDict::new();
        self.visit_params(&mut |p| dict.capture(p));
        dict
    }

    /// Restores weights by name; returns how many parameters matched.
    pub fn load_state_dict(&mut self, dict: &StateDict) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| {
            if dict.restore(p) {
                n += 1;
            }
        });
        n
    }

    /// Extracts the pre-trained encoder weights as a state dict, ready for
    /// [`crate::PragFormer::load_state_dict`] (head weights excluded — the
    /// classifier head trains fresh, like the paper's fine-tuning).
    pub fn encoder_state(&mut self) -> StateDict {
        let mut dict = StateDict::new();
        self.encoder.visit_params(&mut |p| dict.capture(p));
        dict
    }
}

/// The MLM objective for [`TrainLoop`]: one masked position = one loss
/// unit, so epoch losses weight batches by how much was actually masked.
pub struct MlmObjective<'m> {
    model: &'m mut MlmModel,
    policy: MaskPolicy,
    rng: SeededRng,
    eval_rng: SeededRng,
    eval_seed: u64,
}

impl<'m> MlmObjective<'m> {
    /// Wraps a model with a masking policy; `seed` drives the training
    /// corruption stream, `seed ^ EVAL_SALT` the (per-pass re-seeded)
    /// evaluation corruption so every epoch scores the same masks.
    pub fn new(model: &'m mut MlmModel, policy: MaskPolicy, seed: u64) -> Self {
        let eval_seed = seed ^ 0xE7A1_5EED;
        Self {
            model,
            policy,
            rng: SeededRng::new(seed),
            eval_rng: SeededRng::new(eval_seed),
            eval_seed,
        }
    }
}

impl Objective for MlmObjective<'_> {
    type Example = MlmSequence;

    fn train_step(&mut self, _examples: &[MlmSequence], batch: &Batch) -> (f32, f32) {
        let (l, masked) = self.model.train_step_seq(
            &batch.ids,
            &batch.valid,
            batch.seq,
            &self.policy,
            &mut self.rng,
        );
        (l, masked as f32)
    }

    fn eval_step(&mut self, _examples: &[MlmSequence], batch: &Batch) -> EvalStep {
        let (l, masked, correct) = self.model.eval_masked(
            &batch.ids,
            &batch.valid,
            batch.seq,
            &self.policy,
            &mut self.eval_rng,
        );
        EvalStep { loss: l, weight: masked as f32, correct: correct as f32, scored: masked as f32 }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.model.visit_params(f);
    }

    fn state_dict(&mut self) -> StateDict {
        self.model.state_dict()
    }

    fn load_state_dict(&mut self, dict: &StateDict) -> usize {
        self.model.load_state_dict(dict)
    }

    fn begin_eval(&mut self) {
        self.eval_rng = SeededRng::new(self.eval_seed);
    }
}

/// Pre-trains an encoder on unlabeled [`MlmSequence`]s; returns the
/// encoder state dict (for [`crate::PragFormer::load_state_dict`]) and
/// per-epoch metrics.
///
/// Runs on the shared bucketed engine with the full [`TrainConfig`] —
/// gradient clipping, warmup/decay and validation-based best-checkpoint
/// selection included (pass an empty `valid` to keep the final epoch's
/// weights).
pub fn pretrain(
    cfg: &ModelConfig,
    train: &[MlmSequence],
    valid: &[MlmSequence],
    tcfg: &TrainConfig,
) -> (StateDict, Vec<EpochMetrics>) {
    let mut rng = SeededRng::new(tcfg.seed);
    let mut model = MlmModel::new(cfg, &mut rng);
    let policy = MaskPolicy::default();
    let mut objective = MlmObjective::new(&mut model, policy, tcfg.seed ^ 0x3A5C_0FFE);
    let history = TrainLoop::new(tcfg.clone(), cfg.max_len).fit(&mut objective, train, valid);
    (model.encoder_state(), history)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_seqs(cfg: &ModelConfig, n: usize) -> Vec<MlmSequence> {
        // Deterministic patterned sequences of varied length: abab…
        (0..n)
            .map(|s| {
                let a = special::COUNT + (s % 3);
                let b = special::COUNT + 3 + (s % 2);
                let len = (cfg.max_len / 2 + (s % (cfg.max_len / 2))).min(cfg.max_len - 2);
                let mut ids = vec![special::CLS];
                for t in 0..len {
                    ids.push(if t % 2 == 0 { a } else { b });
                }
                MlmSequence { ids }
            })
            .collect()
    }

    fn quick_cfg(epochs: usize, lr: f32, seed: u64) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 8,
            lr,
            clip: 1.0,
            seed,
            warmup_frac: 0.1,
            shuffle_window: 0,
        }
    }

    #[test]
    fn masking_respects_cls_and_padding() {
        let cfg = ModelConfig::tiny(16);
        let mut rng = SeededRng::new(1);
        let model = MlmModel::new(&cfg, &mut rng);
        let seqs = toy_seqs(&cfg, 2);
        let seq = cfg.max_len;
        let mut ids = Vec::new();
        let mut valid = Vec::new();
        for s in &seqs {
            ids.extend_from_slice(&s.ids);
            ids.resize(ids.len() + (seq - s.ids.len()), special::PAD);
            valid.push(s.ids.len());
        }
        let policy = MaskPolicy { mask_fraction: 1.0, ..Default::default() };
        let (corrupted, targets) = model.mask_batch(&ids, &valid, seq, &policy, &mut rng);
        for (b, &vb) in valid.iter().enumerate() {
            let base = b * seq;
            assert_eq!(corrupted[base], special::CLS, "CLS corrupted");
            assert!(targets[base].is_none());
            for t in vb..seq {
                assert_eq!(corrupted[base + t], special::PAD, "padding corrupted");
                assert!(targets[base + t].is_none());
            }
            // All real positions are selected at fraction 1.0.
            for t in 1..vb {
                assert!(targets[base + t].is_some());
            }
        }
    }

    #[test]
    fn mask_stream_is_padding_invariant() {
        // Same RNG seed, same valid prefixes, different padded lengths:
        // identical corruption on the valid prefix and identical RNG
        // state afterwards.
        let cfg = ModelConfig::tiny(16);
        let mut rng = SeededRng::new(4);
        let model = MlmModel::new(&cfg, &mut rng);
        let prefix: Vec<usize> = vec![special::CLS, 5, 6, 7, 5, 6, 7, 5];
        let policy = MaskPolicy::default();
        let run = |seq: usize| {
            let mut ids = prefix.clone();
            ids.resize(seq, special::PAD);
            let mut r = SeededRng::new(99);
            let out = model.mask_batch(&ids, &[prefix.len()], seq, &policy, &mut r);
            (out, r.uniform())
        };
        let ((c8, t8), next8) = run(8);
        let ((c48, t48), next48) = run(cfg.max_len);
        assert_eq!(&c8[..8], &c48[..8]);
        assert_eq!(&t8[..8], &t48[..8]);
        assert_eq!(next8, next48, "RNG streams diverged with padding");
    }

    #[test]
    fn mlm_sequence_new_truncates_padding() {
        // The adapter for padded `Vocab::encode` output: only the valid
        // prefix survives.
        let s = MlmSequence::new(vec![special::CLS, 7, 9, special::PAD, special::PAD], 3);
        assert_eq!(s.ids, vec![special::CLS, 7, 9]);
        assert_eq!(s.token_ids(), &[special::CLS, 7, 9]);
    }

    #[test]
    fn mask_fraction_zero_is_identity() {
        let cfg = ModelConfig::tiny(16);
        let mut rng = SeededRng::new(2);
        let model = MlmModel::new(&cfg, &mut rng);
        let seqs = toy_seqs(&cfg, 1);
        let policy = MaskPolicy { mask_fraction: 0.0, ..Default::default() };
        let ids = &seqs[0].ids;
        let (corrupted, targets) =
            model.mask_batch(ids, &[ids.len()], ids.len(), &policy, &mut rng);
        assert_eq!(&corrupted, ids);
        assert!(targets.iter().all(Option::is_none));
    }

    #[test]
    fn pretraining_reduces_loss() {
        let cfg = ModelConfig::tiny(16);
        let seqs = toy_seqs(&cfg, 24);
        let (_, history) = pretrain(&cfg, &seqs, &[], &quick_cfg(8, 3e-3, 7));
        assert_eq!(history.len(), 8);
        let first = history[0].train_loss;
        let last = history.last().unwrap().train_loss;
        assert!(last < first * 0.8, "MLM loss did not fall: {first} -> {last} ({history:?})");
    }

    #[test]
    fn pretraining_tracks_validation_and_selects_best() {
        let cfg = ModelConfig::tiny(16);
        let all = toy_seqs(&cfg, 24);
        let (train, valid) = all.split_at(18);
        let (_, history) = pretrain(&cfg, train, valid, &quick_cfg(4, 3e-3, 9));
        assert_eq!(history.len(), 4);
        for m in &history {
            assert!(m.valid_loss.is_finite());
            assert!((0.0..=1.0).contains(&m.valid_accuracy));
        }
        // Validation loss should improve over training on this toy set.
        assert!(history.last().unwrap().valid_loss < history[0].valid_loss * 1.5);
    }

    #[test]
    fn pretrained_state_loads_into_classifier() {
        let cfg = ModelConfig::tiny(16);
        let seqs = toy_seqs(&cfg, 8);
        let (state, _) = pretrain(&cfg, &seqs, &[], &quick_cfg(1, 1e-3, 8));
        let mut rng = SeededRng::new(9);
        let mut clf = crate::PragFormer::new(&cfg, &mut rng);
        let restored = clf.load_state_dict(&state);
        assert!(restored > 5, "only {restored} encoder params restored");
    }
}
