//! The PragFormer classifier: encoder + CLS pooling + two-dense head.
//!
//! §4.3 of the paper: "The FC layer in PragFormer contains two dense
//! layers with a ReLU activation function between them. We implemented
//! dropout as a regularization strategy."
//!
//! Since the trunk/head split, this type is a thin composition of the
//! shared [`Trunk`] (embedding + encoder stack + CLS pooling) and one
//! [`ClassifierHead`] — the paper-faithful single-task model. The
//! multi-task variant ([`crate::multitask::MultiTaskPragFormer`]) reuses
//! exactly the same two pieces with three heads on one trunk.

use crate::config::ModelConfig;
use crate::encoder::Encoder;
use crate::head::{ClassifierHead, Trunk};
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::prepack_enabled;
use pragformer_tensor::nn::Param;
use pragformer_tensor::serialize::StateDict;
use pragformer_tensor::{loss, Tensor};

/// The full classification model: one [`Trunk`], one [`ClassifierHead`].
pub struct PragFormer {
    trunk: Trunk,
    head: ClassifierHead,
}

impl PragFormer {
    /// Builds a model from a config and seed.
    pub fn new(cfg: &ModelConfig, rng: &mut SeededRng) -> Self {
        // Construction order (trunk, then head) fixes the RNG draw order;
        // the head keeps its historical parameter names ("head.fc1", …)
        // so pre-split state dicts keep loading.
        Self { trunk: Trunk::new(cfg, rng), head: ClassifierHead::new("head", cfg, rng) }
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        self.trunk.config()
    }

    /// Read access to the encoder (attention maps, explainability).
    pub fn encoder(&self) -> &Encoder {
        self.trunk.encoder()
    }

    /// Model-local int8 override: `Some(true)` forces quantized trunk
    /// inference, `Some(false)` forces f32, `None` follows the process
    /// kernel tier (see [`crate::head::Trunk::set_int8_override`]).
    pub fn set_int8_override(&mut self, force: Option<bool>) {
        self.trunk.set_int8_override(force);
    }

    /// Static f32-vs-int8 weight accounting for the trunk.
    pub fn trunk_weight_bytes(&self) -> crate::head::TrunkWeightBytes {
        self.trunk.weight_bytes()
    }

    /// Model-local pre-packing override: `Some(true)` forces zero-repack
    /// f32 inference, `Some(false)` forces pack-per-call, `None` follows
    /// the process-wide `PRAGFORMER_PREPACK` switch (see
    /// [`crate::head::Trunk::set_prepack_override`]).
    pub fn set_prepack_override(&mut self, force: Option<bool>) {
        self.trunk.set_prepack_override(force);
    }

    /// Model-local fused-attention override: `Some(true)` forces the
    /// fused QKV + single-pass-softmax fast path at inference,
    /// `Some(false)` forces the legacy split path, `None` follows the
    /// process-wide `PRAGFORMER_ATTN` switch (see
    /// [`crate::head::Trunk::set_attn_fused_override`]).
    pub fn set_attn_fused_override(&mut self, force: Option<bool>) {
        self.trunk.set_attn_fused_override(force);
    }

    /// Bytes retained by the trunk's attention backward caches — zero
    /// after any eval forward (cache-free inference mode).
    pub fn retained_attention_bytes(&self) -> usize {
        self.trunk.retained_attention_bytes()
    }

    /// Eagerly builds the inference weight caches the next eval forward
    /// would use (trunk int8 copies or packed f32 panels, plus head
    /// panels), moving the one-time pack cost out of the first request.
    pub fn prepack_for_inference(&mut self) {
        self.trunk.prepack_for_inference();
        if self.trunk.prepack_override().unwrap_or_else(prepack_enabled) {
            self.head.ensure_packed();
        }
    }

    /// Whether the head should run on packed panels for an eval forward.
    /// Heads are always f32 (int8 quantizes only the trunk), so this
    /// ignores the int8 decision and applies under every kernel tier.
    fn head_wants_prepack(&self) -> bool {
        self.trunk.prepack_override().unwrap_or_else(prepack_enabled)
    }

    /// Forward pass: `[batch × max_len]` ids → `[batch, n_classes]` logits.
    pub fn forward(&mut self, ids: &[usize], valid: &[usize], train: bool) -> Tensor {
        self.forward_seq(ids, valid, self.config().max_len, train)
    }

    /// Forward pass over a batch padded to an explicit `seq ≤ max_len`:
    /// `[batch × seq]` ids → `[batch, n_classes]` logits.
    ///
    /// The batched entry point of the model: all projection/FFN GEMMs run
    /// over `batch·seq` rows at once, and per-row logits are bitwise
    /// independent of both the batch size and the padded length (see
    /// [`crate::encoder::Encoder::forward_seq`]), so batching never
    /// changes a prediction.
    pub fn forward_seq(
        &mut self,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
        train: bool,
    ) -> Tensor {
        if !train && self.head_wants_prepack() {
            self.head.ensure_packed();
        } else {
            self.head.drop_packed();
        }
        let cls = self.trunk.forward_cls(ids, valid, seq, train);
        self.head.forward(&cls, train)
    }

    /// Backward pass from `dlogits` (as produced by
    /// [`pragformer_tensor::loss::softmax_cross_entropy`]).
    pub fn backward(&mut self, dlogits: &Tensor) {
        let dcls = self.head.backward(dlogits);
        self.trunk.backward_cls(&dcls);
    }

    /// One fused train step helper: forward, CE loss, backward.
    /// Returns the batch loss. Equivalent to [`PragFormer::train_step_seq`]
    /// at `seq = max_len`.
    pub fn train_step(&mut self, ids: &[usize], valid: &[usize], labels: &[usize]) -> f32 {
        self.train_step_seq(ids, valid, self.config().max_len, labels)
    }

    /// One fused train step over a batch padded to an explicit
    /// `seq ≤ max_len` — the length-bucketed training entry point.
    ///
    /// With a fixed dropout-RNG state, the loss and every accumulated
    /// parameter gradient are **bitwise identical** for every padded
    /// length `seq ≥ max(valid)`: forward activations on the valid prefix
    /// are padding-invariant (see [`PragFormer::forward_seq`]), padded
    /// rows carry exactly-zero gradients backward, every cross-row
    /// reduction treats them as additive zeros, and dropout draws its
    /// mask per valid position only. Enforced over randomized shapes by
    /// `tests/train_proptests.rs`.
    pub fn train_step_seq(
        &mut self,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
        labels: &[usize],
    ) -> f32 {
        let logits = self.forward_seq(ids, valid, seq, true);
        let (l, dlogits) = loss::softmax_cross_entropy(&logits, labels);
        self.backward(&dlogits);
        l
    }

    /// Probability of the positive class for each sequence (eval mode).
    ///
    /// Accepts any batch size (`ids.len() = batch × max_len`); kept for
    /// API familiarity, equivalent to [`PragFormer::predict_proba_batch`]
    /// at `seq = max_len`.
    pub fn predict_proba(&mut self, ids: &[usize], valid: &[usize]) -> Vec<f32> {
        self.predict_proba_batch(ids, valid, self.config().max_len)
    }

    /// Batched positive-class probabilities (eval mode), the advisor's
    /// hot path.
    ///
    /// `ids` is `batch × seq` flattened with `seq ≤ max_len`; `valid[b]`
    /// counts sequence `b`'s non-pad prefix. One call runs the whole
    /// batch through single large GEMMs. Per sequence, the result is
    /// **bitwise identical** for every batch size and every padded length
    /// `seq ≥ valid[b]` — batching and length-bucketing are pure
    /// performance choices, never accuracy trade-offs.
    pub fn predict_proba_batch(&mut self, ids: &[usize], valid: &[usize], seq: usize) -> Vec<f32> {
        let logits = self.forward_seq(ids, valid, seq, false);
        self.trunk.clear_cache();
        loss::positive_probabilities(&logits)
    }

    /// Hard labels at the paper's 0.5 threshold.
    pub fn predict(&mut self, ids: &[usize], valid: &[usize]) -> Vec<bool> {
        self.predict_proba(ids, valid).into_iter().map(|p| p > 0.5).collect()
    }

    /// Parameter traversal over encoder + head.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.trunk.visit_params(f);
        self.head.visit_params(f);
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total trainable weights.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Captures all weights into a [`StateDict`].
    pub fn state_dict(&mut self) -> StateDict {
        let mut dict = StateDict::new();
        self.visit_params(&mut |p| dict.capture(p));
        dict
    }

    /// Restores weights by name; returns how many parameters matched.
    pub fn load_state_dict(&mut self, dict: &StateDict) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| {
            if dict.restore(p) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch(cfg: &ModelConfig, batch: usize) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        // Class 0 sequences are all token 5, class 1 all token 6.
        let mut ids = Vec::new();
        let mut valid = Vec::new();
        let mut labels = Vec::new();
        for b in 0..batch {
            let label = b % 2;
            let tok = if label == 0 { 5 } else { 6 };
            let len = cfg.max_len / 2;
            let mut seq = vec![2usize]; // CLS
            seq.extend(std::iter::repeat_n(tok, len - 1));
            seq.resize(cfg.max_len, 0); // PAD
            ids.extend(seq);
            valid.push(len);
            labels.push(label);
        }
        (ids, valid, labels)
    }

    #[test]
    fn logits_shape() {
        let cfg = ModelConfig::tiny(10);
        let mut rng = SeededRng::new(1);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let (ids, valid, _) = toy_batch(&cfg, 4);
        let logits = model.forward(&ids, &valid, false);
        model.trunk.clear_cache();
        assert_eq!(logits.shape(), &[4, 2]);
    }

    #[test]
    fn learns_a_trivial_task() {
        // Separating "all 5s" from "all 6s" must be learnable in a few
        // dozen steps; this exercises the full forward/backward stack.
        let cfg = ModelConfig::tiny(10);
        let mut rng = SeededRng::new(2);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let mut opt = pragformer_tensor::optim::AdamW::new(5e-3);
        let (ids, valid, labels) = toy_batch(&cfg, 8);
        let mut last = f32::INFINITY;
        for step in 0..60 {
            model.zero_grad();
            let l = model.train_step(&ids, &valid, &labels);
            opt.begin_step();
            model.visit_params(&mut |p| opt.update(p));
            if step == 0 {
                last = l;
            }
        }
        let final_loss = {
            let logits = model.forward(&ids, &valid, false);
            model.trunk.clear_cache();
            pragformer_tensor::loss::softmax_cross_entropy(&logits, &labels).0
        };
        assert!(final_loss < last * 0.5, "no learning: {last} -> {final_loss}");
        let preds = model.predict(&ids, &valid);
        let correct = preds.iter().zip(&labels).filter(|(p, l)| **p == (**l == 1)).count();
        assert!(correct >= 7, "only {correct}/8 correct");
    }

    #[test]
    fn state_dict_roundtrip_preserves_predictions() {
        let cfg = ModelConfig::tiny(10);
        let mut rng = SeededRng::new(3);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let (ids, valid, _) = toy_batch(&cfg, 2);
        let before = model.predict_proba(&ids, &valid);
        let dict = model.state_dict();

        let mut rng2 = SeededRng::new(999);
        let mut model2 = PragFormer::new(&cfg, &mut rng2);
        let restored = model2.load_state_dict(&dict);
        assert!(restored > 10, "only {restored} params restored");
        let after = model2.predict_proba(&ids, &valid);
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn predictions_are_deterministic_in_eval() {
        let cfg = ModelConfig::tiny(10);
        let mut rng = SeededRng::new(4);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let (ids, valid, _) = toy_batch(&cfg, 3);
        let a = model.predict_proba(&ids, &valid);
        let b = model.predict_proba(&ids, &valid);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_probabilities_are_bitwise_equal_to_sequential() {
        // The advise_batch acceptance property at the model layer: one
        // batch-8 forward must reproduce eight batch-1 forwards bit for
        // bit, and a shorter padded length must not change anything.
        let cfg = ModelConfig::tiny(10);
        let mut rng = SeededRng::new(6);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let (ids, valid, _) = toy_batch(&cfg, 8);
        let batched = model.predict_proba_batch(&ids, &valid, cfg.max_len);
        assert_eq!(batched.len(), 8);
        for b in 0..8 {
            let one = model.predict_proba_batch(
                &ids[b * cfg.max_len..(b + 1) * cfg.max_len],
                &valid[b..b + 1],
                cfg.max_len,
            );
            assert_eq!(
                batched[b].to_bits(),
                one[0].to_bits(),
                "sequence {b}: batched {} != sequential {}",
                batched[b],
                one[0]
            );
        }
        // Bucketed length: pad each row only to half the max length
        // (toy_batch uses valid = max_len/2).
        let seq = cfg.max_len / 2;
        let mut short_ids = Vec::new();
        for b in 0..8 {
            short_ids.extend_from_slice(&ids[b * cfg.max_len..b * cfg.max_len + seq]);
        }
        let bucketed = model.predict_proba_batch(&short_ids, &valid, seq);
        for b in 0..8 {
            assert_eq!(bucketed[b].to_bits(), batched[b].to_bits(), "bucketed row {b}");
        }
    }

    #[test]
    fn param_count_is_positive_and_stable() {
        let cfg = ModelConfig::tiny(10);
        let mut rng = SeededRng::new(5);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let n = model.param_count();
        assert!(n > 1000, "{n}");
        assert_eq!(n, model.param_count());
    }
}
