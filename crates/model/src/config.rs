//! Model hyper-parameters.

/// Transformer hyper-parameters.
///
/// The paper fine-tunes a 12-layer, 768-dim RoBERTa. This reproduction's
/// defaults are scaled to train on a 2-core CPU in minutes while keeping
/// every architectural ingredient (multi-head attention, GELU FFN,
/// post-LN residuals, learned positions, CLS pooling, 2-dense head).
#[derive(Clone, Debug, PartialEq)]
pub struct ModelConfig {
    /// Vocabulary size (from the tokenizer).
    pub vocab: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Attention heads (`d_model % n_heads == 0`).
    pub n_heads: usize,
    /// Encoder blocks.
    pub n_layers: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length including the CLS token. The paper sets
    /// 110 (its longest snippet); the small profile truncates harder.
    pub max_len: usize,
    /// Dropout probability (classification head + embeddings).
    pub dropout: f32,
    /// Output classes (2 for all three tasks).
    pub n_classes: usize,
}

impl ModelConfig {
    /// Reproduction-scale profile: fast on 2 CPU cores.
    pub fn small(vocab: usize) -> Self {
        Self {
            vocab,
            d_model: 48,
            n_heads: 2,
            n_layers: 2,
            d_ff: 96,
            max_len: 72,
            dropout: 0.1,
            n_classes: 2,
        }
    }

    /// Paper-shaped profile: sequence cap 110 like PragFormer's input,
    /// wider and deeper (still far from 125M parameters — documented as a
    /// substitution in DESIGN.md).
    pub fn paper(vocab: usize) -> Self {
        Self {
            vocab,
            d_model: 96,
            n_heads: 4,
            n_layers: 4,
            d_ff: 192,
            max_len: 110,
            dropout: 0.1,
            n_classes: 2,
        }
    }

    /// Tiny profile for unit tests. `max_len` 48 still covers a typical
    /// unpadded snippet (~33 tokens, Table 7) — truncating harder would
    /// cut off the very tokens the task hinges on.
    pub fn tiny(vocab: usize) -> Self {
        Self {
            vocab,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 48,
            dropout: 0.0,
            n_classes: 2,
        }
    }

    /// Per-head width.
    pub fn d_head(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Validates invariants; call before building a model.
    pub fn validate(&self) -> Result<(), String> {
        if self.vocab == 0 {
            return Err("vocab must be positive".into());
        }
        if self.d_model == 0 || self.n_heads == 0 || !self.d_model.is_multiple_of(self.n_heads) {
            return Err(format!(
                "d_model {} must be a positive multiple of n_heads {}",
                self.d_model, self.n_heads
            ));
        }
        if self.max_len < 2 {
            return Err("max_len must fit CLS plus at least one token".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(format!("dropout {} outside [0,1)", self.dropout));
        }
        if self.n_classes < 2 {
            return Err("need at least two classes".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_validate() {
        assert!(ModelConfig::small(1000).validate().is_ok());
        assert!(ModelConfig::paper(1000).validate().is_ok());
        assert!(ModelConfig::tiny(10).validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ModelConfig::tiny(10);
        c.n_heads = 3; // 16 % 3 != 0
        assert!(c.validate().is_err());
        c = ModelConfig::tiny(0);
        assert!(c.validate().is_err());
        c = ModelConfig::tiny(10);
        c.max_len = 1;
        assert!(c.validate().is_err());
        c = ModelConfig::tiny(10);
        c.dropout = 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn d_head_divides() {
        let c = ModelConfig::small(100);
        assert_eq!(c.d_head() * c.n_heads, c.d_model);
    }
}
