//! Property tests for the fused attention fast path — the inference
//! twin of `crates/tensor/tests/kernel_tier_proptests.rs`'s fused-GEMM
//! claims, lifted to whole models.
//!
//! The contract: the fused QKV projection (one GEMM over `wq|wk|wv`)
//! plus the single-pass masked score epilogue produce **bitwise** the
//! same CLS representations as the legacy split path, in every cache
//! regime (plain f32, pre-packed f32, int8), for every shape, padding
//! and batch split. Randomized over model seeds, batch sizes, per-row
//! valid lengths and padded lengths; the model-local overrides pin each
//! regime so the process-wide kernel tier (swept by CI's
//! `PRAGFORMER_KERNEL` jobs) never interferes.

use pragformer_model::{ModelConfig, Trunk};
use pragformer_tensor::init::SeededRng;
use proptest::prelude::*;

const VOCAB: usize = 18;

fn tiny_cfg(max_len: usize) -> ModelConfig {
    ModelConfig {
        vocab: VOCAB,
        d_model: 16,
        n_heads: 2,
        n_layers: 2,
        d_ff: 32,
        max_len,
        dropout: 0.0,
        n_classes: 2,
    }
}

/// Random id block (`batch × seq`) with per-row valid prefixes ≥ 1.
fn random_batch(batch: usize, seq: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = SeededRng::new(seed);
    let mut ids = Vec::with_capacity(batch * seq);
    let mut valid = Vec::with_capacity(batch);
    for _ in 0..batch {
        let v = 1 + rng.below(seq);
        for t in 0..seq {
            ids.push(if t < v { rng.below(VOCAB) } else { 0 });
        }
        valid.push(v);
    }
    (ids, valid)
}

fn bits_of(t: &pragformer_tensor::Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Fused vs split CLS bits across every inference cache regime.
    #[test]
    fn trunk_cls_fused_is_bitwise_split_in_every_regime(
        batch in 1usize..4,
        seq in 2usize..12,
        model_seed in 0u64..1_000,
        data_seed in 0u64..1_000,
    ) {
        let cfg = tiny_cfg(16);
        let mut rng = SeededRng::new(model_seed);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        let (ids, valid) = random_batch(batch, seq, data_seed);
        // (int8, packed) regimes; packed is irrelevant under int8.
        for (int8, packed) in [(false, false), (false, true), (true, false)] {
            trunk.set_int8_override(Some(int8));
            trunk.set_prepack_override(Some(packed));
            trunk.set_attn_fused_override(Some(false));
            let split = trunk.forward_cls(&ids, &valid, seq, false);
            trunk.clear_cache();
            prop_assert!(!trunk.encoder().attn_fused_active());
            trunk.set_attn_fused_override(Some(true));
            let fused = trunk.forward_cls(&ids, &valid, seq, false);
            trunk.clear_cache();
            prop_assert!(trunk.encoder().attn_fused_active());
            prop_assert_eq!(
                bits_of(&split), bits_of(&fused),
                "int8={} packed={}: fused CLS bits diverged", int8, packed
            );
        }
    }

    /// The fast path preserves the row-determinism contract: each CLS
    /// row of a fused batched forward is bitwise the row of a fused
    /// batch-of-1 forward, and longer padding never moves valid bits.
    #[test]
    fn fused_cls_rows_are_batch_and_padding_invariant(
        batch in 2usize..4,
        seq in 2usize..10,
        pad_extra in 1usize..6,
        model_seed in 0u64..1_000,
        data_seed in 0u64..1_000,
    ) {
        let cfg = tiny_cfg(16);
        let mut rng = SeededRng::new(model_seed);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        trunk.set_int8_override(Some(false));
        trunk.set_attn_fused_override(Some(true));
        let (ids, valid) = random_batch(batch, seq, data_seed);
        let batched = trunk.forward_cls(&ids, &valid, seq, false);
        trunk.clear_cache();
        for b in 0..batch {
            // Batch split: the same sequence alone.
            let one = trunk.forward_cls(
                &ids[b * seq..(b + 1) * seq],
                &valid[b..b + 1],
                seq,
                false,
            );
            trunk.clear_cache();
            prop_assert_eq!(
                bits_of(&one.slice_rows(0, 1)),
                bits_of(&batched.slice_rows(b, 1)),
                "fused CLS row {} not batch invariant", b
            );
            // Padding split: the same sequence padded further.
            let wider = (seq + pad_extra).min(cfg.max_len);
            let mut long_ids = ids[b * seq..(b + 1) * seq].to_vec();
            long_ids.resize(wider, 0);
            let padded = trunk.forward_cls(&long_ids, &valid[b..b + 1], wider, false);
            trunk.clear_cache();
            prop_assert_eq!(
                bits_of(&padded.slice_rows(0, 1)),
                bits_of(&batched.slice_rows(b, 1)),
                "fused CLS row {} not padding invariant", b
            );
        }
    }

    /// Mode hygiene under random train/eval interleavings: eval forwards
    /// retain zero attention bytes, train forwards restore the backward
    /// caches, and the interleaving never changes eval bits.
    #[test]
    fn interleaved_train_eval_keeps_eval_bits_and_drops_caches(
        flips in proptest::collection::vec(any::<bool>(), 1..6),
        model_seed in 0u64..1_000,
        data_seed in 0u64..1_000,
    ) {
        let cfg = tiny_cfg(12);
        let mut rng = SeededRng::new(model_seed);
        let mut trunk = Trunk::new(&cfg, &mut rng);
        trunk.set_int8_override(Some(false));
        let (ids, valid) = random_batch(2, 8, data_seed);
        let baseline = trunk.forward_cls(&ids, &valid, 8, false);
        trunk.clear_cache();
        for &train in &flips {
            let _ = trunk.forward_cls(&ids, &valid, 8, train);
            trunk.clear_cache();
            if train {
                prop_assert!(
                    trunk.retained_attention_bytes() > 0,
                    "train forward retained no attention cache"
                );
            } else {
                prop_assert_eq!(
                    trunk.retained_attention_bytes(), 0,
                    "eval forward retained attention bytes"
                );
            }
        }
        let after = trunk.forward_cls(&ids, &valid, 8, false);
        trunk.clear_cache();
        prop_assert_eq!(bits_of(&baseline), bits_of(&after), "interleaving moved eval bits");
    }
}
