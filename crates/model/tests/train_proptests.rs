//! Property tests for length-bucketed *training* — the backward-pass twin
//! of `crates/tensor/tests/gemm_proptests.rs`.
//!
//! The claim the training engine leans on: one gradient step over a batch
//! padded to its length bucket is **bitwise identical** — same loss bits,
//! same bits in every accumulated parameter gradient — to the same batch
//! padded all the way to `max_len`. Forward activations on the valid
//! prefix are padding-invariant (the PR 1 inference property), padded
//! rows enter backward with exactly-zero gradients, and every cross-row
//! reduction (weight gradients, attention score/context products)
//! accumulates those rows as additive zeros.
//!
//! Randomized over batch shape, per-example valid lengths, label
//! patterns and weight seeds, for both objectives (classification CE and
//! masked-LM CE). Dropout is off in the proptests (the RNG stream is the
//! one thing two *separate* step calls on one model can't share); the
//! dropout-on case is covered by the deterministic twin-model tests at
//! the bottom, which rely on per-valid-position mask draws.

use pragformer_model::batching::bucket_len;
use pragformer_model::mlm::{MaskPolicy, MlmModel};
use pragformer_model::{ModelConfig, PragFormer};
use pragformer_tensor::init::SeededRng;
use pragformer_tokenize::vocab::special;
use proptest::prelude::*;

const MAX_LEN: usize = 24;
const VOCAB: usize = 18;

fn tiny_cfg(dropout: f32) -> ModelConfig {
    ModelConfig {
        vocab: VOCAB,
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: MAX_LEN,
        dropout,
        n_classes: 2,
    }
}

/// Random CLS-led valid prefixes for a batch.
fn random_prefixes(lens: &[usize], seed: u64) -> Vec<Vec<usize>> {
    let mut rng = SeededRng::new(seed);
    lens.iter()
        .map(|&len| {
            let mut ids = vec![special::CLS];
            for _ in 1..len {
                ids.push(special::COUNT + rng.below(VOCAB - special::COUNT));
            }
            ids
        })
        .collect()
}

/// Flattens prefixes into a `batch × seq` id block padded with PAD.
fn pad_to(prefixes: &[Vec<usize>], seq: usize) -> (Vec<usize>, Vec<usize>) {
    let mut ids = Vec::with_capacity(prefixes.len() * seq);
    let mut valid = Vec::with_capacity(prefixes.len());
    for p in prefixes {
        ids.extend_from_slice(p);
        ids.extend(std::iter::repeat_n(special::PAD, seq - p.len()));
        valid.push(p.len());
    }
    (ids, valid)
}

/// Snapshot of every parameter gradient, bit-exact, keyed by name.
fn grad_bits(visit: pragformer_tensor::optim::ParamVisitor<'_>) -> Vec<(String, Vec<u32>)> {
    let mut out = Vec::new();
    visit(&mut |p| {
        out.push((p.name.clone(), p.grad.data().iter().map(|g| g.to_bits()).collect()));
    });
    out
}

fn assert_grads_bitwise_equal(
    a: &[(String, Vec<u32>)],
    b: &[(String, Vec<u32>)],
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for ((name_a, ga), (name_b, gb)) in a.iter().zip(b) {
        prop_assert_eq!(name_a, name_b);
        for (i, (x, y)) in ga.iter().zip(gb).enumerate() {
            prop_assert_eq!(
                *x,
                *y,
                "{context}: param {name_a}[{i}]: bucketed {} vs max_len {}",
                f32::from_bits(*x),
                f32::from_bits(*y)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Classification: `train_step_seq` at the batch's bucket vs at
    /// `max_len` — same loss bits, same gradient bits.
    #[test]
    fn finetune_bucketed_step_matches_maxlen_bitwise(
        lens in proptest::collection::vec(2usize..=MAX_LEN, 1..5),
        data_seed in 0u64..1_000,
        weight_seed in 0u64..1_000,
    ) {
        let cfg = tiny_cfg(0.0);
        let prefixes = random_prefixes(&lens, data_seed);
        let labels: Vec<usize> = (0..lens.len()).map(|i| i % 2).collect();
        let longest = lens.iter().copied().max().unwrap();
        let seq = bucket_len(longest, MAX_LEN);

        let mut model = PragFormer::new(&cfg, &mut SeededRng::new(weight_seed));

        let (ids_b, valid_b) = pad_to(&prefixes, seq);
        model.zero_grad();
        let loss_bucketed = model.train_step_seq(&ids_b, &valid_b, seq, &labels);
        let grads_bucketed = grad_bits(&mut |f| model.visit_params(f));

        let (ids_f, valid_f) = pad_to(&prefixes, MAX_LEN);
        model.zero_grad();
        let loss_fixed = model.train_step_seq(&ids_f, &valid_f, MAX_LEN, &labels);
        let grads_fixed = grad_bits(&mut |f| model.visit_params(f));

        prop_assert_eq!(
            loss_bucketed.to_bits(), loss_fixed.to_bits(),
            "loss differs: bucketed {} (seq {}) vs max_len {}", loss_bucketed, seq, loss_fixed
        );
        assert_grads_bitwise_equal(&grads_bucketed, &grads_fixed, "finetune")?;
    }

    /// MLM: masking + `train_step_seq` at the bucket vs at `max_len`,
    /// with identical masking-RNG seeds — same loss bits, same masked
    /// count, same gradient bits.
    #[test]
    fn mlm_bucketed_step_matches_maxlen_bitwise(
        lens in proptest::collection::vec(2usize..=MAX_LEN, 1..5),
        data_seed in 0u64..1_000,
        weight_seed in 0u64..1_000,
        mask_seed in 0u64..1_000,
    ) {
        let cfg = tiny_cfg(0.0);
        let prefixes = random_prefixes(&lens, data_seed);
        let policy = MaskPolicy::default();
        let longest = lens.iter().copied().max().unwrap();
        let seq = bucket_len(longest, MAX_LEN);

        let mut model = MlmModel::new(&cfg, &mut SeededRng::new(weight_seed));

        let (ids_b, valid_b) = pad_to(&prefixes, seq);
        let (loss_bucketed, masked_bucketed) = model.train_step_seq(
            &ids_b, &valid_b, seq, &policy, &mut SeededRng::new(mask_seed));
        let grads_bucketed = grad_bits(&mut |f| model.visit_params(f));

        let (ids_f, valid_f) = pad_to(&prefixes, MAX_LEN);
        let (loss_fixed, masked_fixed) = model.train_step_seq(
            &ids_f, &valid_f, MAX_LEN, &policy, &mut SeededRng::new(mask_seed));
        let grads_fixed = grad_bits(&mut |f| model.visit_params(f));

        prop_assert_eq!(masked_bucketed, masked_fixed, "masked counts differ");
        prop_assert_eq!(
            loss_bucketed.to_bits(), loss_fixed.to_bits(),
            "MLM loss differs: bucketed {} (seq {}) vs max_len {}", loss_bucketed, seq, loss_fixed
        );
        assert_grads_bitwise_equal(&grads_bucketed, &grads_fixed, "mlm")?;
    }
}

/// The dropout-on twin: per-valid-position mask draws make even the
/// *stochastic* training path padding-invariant. Two models built from
/// the same seed (identical weights and dropout streams) must produce
/// bit-identical losses and gradients when one steps at the bucket and
/// the other at `max_len`.
#[test]
fn dropout_on_step_is_padding_invariant_across_twin_models() {
    let cfg = tiny_cfg(0.3);
    let lens = [5usize, 11, 3];
    let prefixes = random_prefixes(&lens, 42);
    let labels = vec![0usize, 1, 1];
    let seq = bucket_len(11, MAX_LEN);
    assert!(seq < MAX_LEN, "test needs a real bucket gap");

    let mut model_a = PragFormer::new(&cfg, &mut SeededRng::new(7));
    let mut model_b = PragFormer::new(&cfg, &mut SeededRng::new(7));

    let (ids_b, valid_b) = pad_to(&prefixes, seq);
    model_a.zero_grad();
    let loss_a = model_a.train_step_seq(&ids_b, &valid_b, seq, &labels);

    let (ids_f, valid_f) = pad_to(&prefixes, MAX_LEN);
    model_b.zero_grad();
    let loss_b = model_b.train_step_seq(&ids_f, &valid_f, MAX_LEN, &labels);

    assert_eq!(
        loss_a.to_bits(),
        loss_b.to_bits(),
        "dropout-on loss differs: bucketed {loss_a} vs max_len {loss_b}"
    );
    let mut grads_a = Vec::new();
    model_a.visit_params(&mut |p| grads_a.push((p.name.clone(), p.grad.clone())));
    let mut i = 0usize;
    model_b.visit_params(&mut |p| {
        let (name, ga) = &grads_a[i];
        assert_eq!(name, &p.name);
        for (j, (x, y)) in ga.data().iter().zip(p.grad.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "param {name}[{j}]: {x} vs {y}");
        }
        i += 1;
    });
}

/// And the same for MLM with dropout on.
#[test]
fn dropout_on_mlm_step_is_padding_invariant_across_twin_models() {
    let cfg = tiny_cfg(0.2);
    let lens = [9usize, 4];
    let prefixes = random_prefixes(&lens, 17);
    let policy = MaskPolicy::default();
    let seq = bucket_len(9, MAX_LEN);

    let mut model_a = MlmModel::new(&cfg, &mut SeededRng::new(3));
    let mut model_b = MlmModel::new(&cfg, &mut SeededRng::new(3));

    let (ids_b, valid_b) = pad_to(&prefixes, seq);
    let (loss_a, m_a) =
        model_a.train_step_seq(&ids_b, &valid_b, seq, &policy, &mut SeededRng::new(5));
    let (ids_f, valid_f) = pad_to(&prefixes, MAX_LEN);
    let (loss_b, m_b) =
        model_b.train_step_seq(&ids_f, &valid_f, MAX_LEN, &policy, &mut SeededRng::new(5));

    assert_eq!(m_a, m_b);
    assert_eq!(loss_a.to_bits(), loss_b.to_bits(), "{loss_a} vs {loss_b}");
}
