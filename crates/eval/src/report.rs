//! Plain-text table and TSV emitters for the benchmark harnesses.
//!
//! Every table/figure binary prints through these helpers so outputs are
//! uniform and easy to diff against EXPERIMENTS.md.

use std::fmt::Write as _;

/// A fixed-column text table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, "{cell:<w$}  ");
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let sep: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(sep.min(100)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as tab-separated values (for plotting scripts).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }
}

/// Formats an f64 with 2 decimals (the paper's reporting precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats an f64 with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_pads_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row_strs(&["alpha", "1"]);
        t.row_strs(&["b", "2000"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn tsv_has_no_padding() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row_strs(&["1", "2"]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row_strs(&["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(0.816), "0.82");
        assert_eq!(f3(0.8), "0.800");
    }
}
