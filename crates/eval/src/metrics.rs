//! Binary-classification metrics.

/// Confusion-matrix counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
}

/// Precision / recall / F1 / accuracy (the paper's reporting quartet).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinaryMetrics {
    /// tp / (tp + fp); 0 when no positive predictions.
    pub precision: f64,
    /// tp / (tp + fn); 0 when no positive labels.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// (tp + tn) / total.
    pub accuracy: f64,
}

/// Builds a confusion matrix from parallel prediction/label slices.
///
/// # Panics
/// Panics when lengths differ.
pub fn confusion(predictions: &[bool], labels: &[bool]) -> Confusion {
    assert_eq!(predictions.len(), labels.len(), "predictions/labels mismatch");
    let mut c = Confusion::default();
    for (&p, &y) in predictions.iter().zip(labels) {
        match (p, y) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

impl Confusion {
    /// Total examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// The confusion matrix with the positive/negative roles swapped —
    /// the negative class scored as if it were the positive one.
    pub fn swapped(&self) -> Confusion {
        Confusion { tp: self.tn, fp: self.fn_, fn_: self.fp, tn: self.tp }
    }

    /// Macro-averaged F1: the unweighted mean of the positive-class F1
    /// and the negative-class F1 ([`Confusion::swapped`]).
    ///
    /// The backend-parity acceptance metric: unlike plain (positive) F1
    /// it cannot be gamed by always predicting the majority class, which
    /// matters on the imbalanced clause tasks.
    pub fn macro_f1(&self) -> f64 {
        (self.metrics().f1 + self.swapped().metrics().f1) / 2.0
    }

    /// Derives the four headline metrics.
    pub fn metrics(&self) -> BinaryMetrics {
        let precision = ratio(self.tp, self.tp + self.fp);
        let recall = ratio(self.tp, self.tp + self.fn_);
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        let accuracy = ratio(self.tp + self.tn, self.total());
        BinaryMetrics { precision, recall, f1, accuracy }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl std::fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.2} R={:.2} F1={:.2} Acc={:.2}",
            self.precision, self.recall, self.f1, self.accuracy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let c = confusion(&[true, false, true], &[true, false, true]);
        let m = c.metrics();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn always_positive_classifier() {
        let c = confusion(&[true; 4], &[true, true, false, false]);
        let m = c.metrics();
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 1.0);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.accuracy, 0.5);
    }

    #[test]
    fn always_negative_classifier_has_zero_f1() {
        let c = confusion(&[false; 3], &[true, false, true]);
        let m = c.metrics();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        assert!((m.accuracy - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn counts_are_complete() {
        let c = confusion(&[true, false, true, false], &[false, true, true, false]);
        assert_eq!(c, Confusion { tp: 1, fp: 1, fn_: 1, tn: 1 });
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let c = Confusion { tp: 8, fp: 2, fn_: 8, tn: 2 };
        let m = c.metrics();
        // P = 0.8, R = 0.5 → F1 = 2·0.8·0.5/1.3
        assert!((m.f1 - (2.0 * 0.8 * 0.5 / 1.3)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_panic() {
        let _ = confusion(&[true], &[true, false]);
    }

    #[test]
    fn empty_inputs_are_all_zero() {
        let m = confusion(&[], &[]).metrics();
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn macro_f1_averages_both_classes() {
        // A perfect classifier: both class F1s are 1.
        let c = confusion(&[true, false], &[true, false]);
        assert_eq!(c.macro_f1(), 1.0);
        // Always-positive on a 50/50 split: positive F1 = 2/3, negative
        // F1 = 0 → macro 1/3, where plain F1 reports 2/3.
        let c = confusion(&[true; 4], &[true, true, false, false]);
        assert!((c.macro_f1() - 1.0 / 3.0).abs() < 1e-12, "{}", c.macro_f1());
        assert!((c.metrics().f1 - 2.0 / 3.0).abs() < 1e-12);
        // Swapping is an involution.
        assert_eq!(c.swapped().swapped(), c);
    }
}
