//! LIME-style local explanations (paper §5.4, Figure 8).
//!
//! Given a token sequence and a black-box probability function, the
//! explainer:
//!
//! 1. samples perturbations that drop random token subsets;
//! 2. queries the model on each perturbation;
//! 3. weighs samples by an exponential kernel on the drop distance;
//! 4. fits a weighted ridge regression from presence indicators to the
//!    model output.
//!
//! The fitted coefficients are per-token importances: positive values
//! push toward the positive class ("needs a directive"), negative values
//! away from it — exactly what the paper reads off LIME's output to argue
//! PragFormer attends to loop variables, arrays and I/O calls.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Explainer settings.
#[derive(Clone, Debug)]
pub struct LimeConfig {
    /// Number of perturbed samples (the original is always included).
    pub samples: usize,
    /// Probability of dropping each token in a perturbation.
    pub drop_prob: f64,
    /// Ridge regularization strength.
    pub ridge: f64,
    /// Kernel width for sample weighting (fraction of tokens dropped).
    pub kernel_width: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LimeConfig {
    fn default() -> Self {
        Self { samples: 400, drop_prob: 0.3, ridge: 1.0, kernel_width: 0.75, seed: 17 }
    }
}

/// A token with its fitted importance.
#[derive(Clone, Debug, PartialEq)]
pub struct TokenWeight {
    /// Token index in the original sequence.
    pub index: usize,
    /// Token text.
    pub token: String,
    /// Fitted contribution toward the positive class.
    pub weight: f64,
}

/// A fitted local explanation.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Model probability on the unperturbed input.
    pub base_probability: f64,
    /// Ridge intercept (local expectation with everything dropped).
    pub intercept: f64,
    /// Per-token weights in sequence order.
    pub weights: Vec<TokenWeight>,
}

impl Explanation {
    /// The `k` most influential tokens by |weight|, descending.
    pub fn top_tokens(&self, k: usize) -> Vec<&TokenWeight> {
        let mut sorted: Vec<&TokenWeight> = self.weights.iter().collect();
        sorted.sort_by(|a, b| b.weight.abs().total_cmp(&a.weight.abs()));
        sorted.truncate(k);
        sorted
    }
}

/// Explains `predict` at `tokens`.
///
/// `predict` maps a token sequence to the positive-class probability; it
/// is called `cfg.samples + 1` times.
pub fn explain(
    tokens: &[String],
    cfg: &LimeConfig,
    predict: &mut dyn FnMut(&[String]) -> f64,
) -> Explanation {
    let n = tokens.len();
    assert!(n > 0, "cannot explain an empty sequence");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let base_probability = predict(tokens);

    // Design matrix rows: presence indicators; target: model output.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(cfg.samples + 1);
    let mut targets: Vec<f64> = Vec::with_capacity(cfg.samples + 1);
    let mut sample_weights: Vec<f64> = Vec::with_capacity(cfg.samples + 1);

    rows.push(vec![1.0; n]);
    targets.push(base_probability);
    sample_weights.push(1.0);

    let mut kept: Vec<String> = Vec::with_capacity(n);
    for _ in 0..cfg.samples {
        let mut mask = vec![1.0f64; n];
        kept.clear();
        let mut dropped = 0usize;
        for (i, t) in tokens.iter().enumerate() {
            if rng.gen::<f64>() < cfg.drop_prob {
                mask[i] = 0.0;
                dropped += 1;
            } else {
                kept.push(t.clone());
            }
        }
        if kept.is_empty() {
            // All-dropped samples carry no signal for token weights.
            continue;
        }
        let p = predict(&kept);
        let distance = dropped as f64 / n as f64;
        let w = (-(distance * distance) / (cfg.kernel_width * cfg.kernel_width)).exp();
        rows.push(mask);
        targets.push(p);
        sample_weights.push(w);
    }

    // Weighted ridge: solve (XᵀWX + λI) β = XᵀW y with an intercept column.
    let dim = n + 1;
    let mut ata = vec![0.0f64; dim * dim];
    let mut atb = vec![0.0f64; dim];
    for ((row, &y), &w) in rows.iter().zip(&targets).zip(&sample_weights) {
        // Augmented feature vector [1, mask...].
        let feat = |j: usize| if j == 0 { 1.0 } else { row[j - 1] };
        for j in 0..dim {
            let fj = feat(j);
            if fj == 0.0 {
                continue;
            }
            atb[j] += w * fj * y;
            for k in j..dim {
                let fk = feat(k);
                if fk != 0.0 {
                    ata[j * dim + k] += w * fj * fk;
                }
            }
        }
    }
    // Mirror to the lower triangle and add the ridge (not on intercept).
    for j in 0..dim {
        for k in 0..j {
            ata[j * dim + k] = ata[k * dim + j];
        }
    }
    for j in 1..dim {
        ata[j * dim + j] += cfg.ridge;
    }
    ata[0] += 1e-9; // keep the intercept row positive definite

    let beta = cholesky_solve(&ata, &atb, dim);

    let weights = tokens
        .iter()
        .enumerate()
        .map(|(i, t)| TokenWeight { index: i, token: t.clone(), weight: beta[i + 1] })
        .collect();
    Explanation { base_probability, intercept: beta[0], weights }
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
fn cholesky_solve(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    // Decompose A = L·Lᵀ.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                // Clamp against tiny negatives from round-off.
                l[i * n + j] = sum.max(1e-12).sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward solve L·y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back solve Lᵀ·x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4,2],[2,3]], b = [10, 8] → x = [1.75, 1.5]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let b = vec![10.0, 8.0];
        let x = cholesky_solve(&a, &b, 2);
        assert!((x[0] - 1.75).abs() < 1e-9, "{x:?}");
        assert!((x[1] - 1.5).abs() < 1e-9, "{x:?}");
    }

    #[test]
    fn single_decisive_token_dominates() {
        // Model: p = 0.9 if "hot" present else 0.1.
        let tokens = toks("for i hot j k");
        let mut predict = |ts: &[String]| {
            if ts.iter().any(|t| t == "hot") {
                0.9
            } else {
                0.1
            }
        };
        let exp = explain(&tokens, &LimeConfig::default(), &mut predict);
        let top = exp.top_tokens(1);
        assert_eq!(top[0].token, "hot");
        assert!(top[0].weight > 0.3, "{:?}", exp.weights);
        // Everything else should be near zero.
        for w in &exp.weights {
            if w.token != "hot" {
                assert!(w.weight.abs() < 0.15, "{w:?}");
            }
        }
    }

    #[test]
    fn negative_token_gets_negative_weight() {
        // "printf" pushes the model toward the negative class.
        let tokens = toks("for i printf a b");
        let mut predict = |ts: &[String]| {
            if ts.iter().any(|t| t == "printf") {
                0.05
            } else {
                0.85
            }
        };
        let exp = explain(&tokens, &LimeConfig::default(), &mut predict);
        let printf_w = exp.weights.iter().find(|w| w.token == "printf").unwrap();
        assert!(printf_w.weight < -0.3, "{printf_w:?}");
    }

    #[test]
    fn constant_model_yields_flat_weights() {
        let tokens = toks("a b c d");
        let mut predict = |_: &[String]| 0.5;
        let exp = explain(&tokens, &LimeConfig::default(), &mut predict);
        for w in &exp.weights {
            assert!(w.weight.abs() < 1e-6, "{w:?}");
        }
        assert!((exp.intercept - 0.5).abs() < 1e-6);
    }

    #[test]
    fn additive_model_weights_recovered_in_order() {
        // p = 0.2 + 0.4·[has x] + 0.2·[has y]
        let tokens = toks("x y z");
        let mut predict = |ts: &[String]| {
            let mut p: f64 = 0.2;
            if ts.iter().any(|t| t == "x") {
                p += 0.4;
            }
            if ts.iter().any(|t| t == "y") {
                p += 0.2;
            }
            p
        };
        let exp = explain(&tokens, &LimeConfig::default(), &mut predict);
        let wx = exp.weights.iter().find(|w| w.token == "x").unwrap().weight;
        let wy = exp.weights.iter().find(|w| w.token == "y").unwrap().weight;
        let wz = exp.weights.iter().find(|w| w.token == "z").unwrap().weight;
        assert!(wx > wy && wy > wz, "x={wx} y={wy} z={wz}");
        assert!(wx > 0.2 && wy > 0.05 && wz.abs() < 0.1);
    }

    #[test]
    fn explanations_are_deterministic() {
        let tokens = toks("p q r");
        let mut predict = |ts: &[String]| ts.len() as f64 / 10.0;
        let cfg = LimeConfig::default();
        let a = explain(&tokens, &cfg, &mut predict);
        let b = explain(&tokens, &cfg, &mut predict);
        for (wa, wb) in a.weights.iter().zip(&b.weights) {
            assert_eq!(wa.weight, wb.weight);
        }
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut predict = |_: &[String]| 0.5;
        let _ = explain(&[], &LimeConfig::default(), &mut predict);
    }
}
