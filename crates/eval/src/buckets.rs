//! Error rate by snippet length (paper Figure 7).

/// One histogram bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct LengthBucket {
    /// Inclusive lower bound on length.
    pub lo: usize,
    /// Inclusive upper bound (`usize::MAX` for the open tail).
    pub hi: usize,
    /// Examples in the bucket.
    pub total: usize,
    /// Misclassified examples in the bucket.
    pub errors: usize,
}

impl LengthBucket {
    /// Errors / total (0 for empty buckets).
    pub fn error_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.errors as f64 / self.total as f64
        }
    }

    /// Label like `"11-20"` or `"51+"`.
    pub fn label(&self) -> String {
        if self.hi == usize::MAX {
            format!("{}+", self.lo)
        } else {
            format!("{}-{}", self.lo, self.hi)
        }
    }
}

/// Buckets `(length, correct)` pairs by the given edges.
///
/// `edges` are inclusive upper bounds of successive buckets; a final open
/// bucket captures everything beyond the last edge. Figure 7 uses
/// `[10, 20, 30, 40, 50]`.
pub fn error_rate_by_length(
    lengths: &[usize],
    correct: &[bool],
    edges: &[usize],
) -> Vec<LengthBucket> {
    assert_eq!(lengths.len(), correct.len(), "lengths/correct mismatch");
    assert!(!edges.is_empty(), "need at least one bucket edge");
    assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must increase");
    let mut buckets: Vec<LengthBucket> = Vec::with_capacity(edges.len() + 1);
    let mut lo = 0usize;
    for &e in edges {
        buckets.push(LengthBucket { lo, hi: e, total: 0, errors: 0 });
        lo = e + 1;
    }
    buckets.push(LengthBucket { lo, hi: usize::MAX, total: 0, errors: 0 });
    for (&len, &ok) in lengths.iter().zip(correct) {
        let b =
            buckets.iter_mut().find(|b| len >= b.lo && len <= b.hi).expect("bucket cover is total");
        b.total += 1;
        if !ok {
            b.errors += 1;
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_and_count() {
        let lengths = [3, 12, 25, 60, 8];
        let correct = [true, false, true, false, false];
        let b = error_rate_by_length(&lengths, &correct, &[10, 20, 50]);
        assert_eq!(b.len(), 4);
        assert_eq!(b[0].total, 2); // 3 and 8
        assert_eq!(b[0].errors, 1); // 8 wrong
        assert_eq!(b[1].total, 1); // 12
        assert_eq!(b[1].errors, 1);
        assert_eq!(b[2].total, 1); // 25
        assert_eq!(b[2].errors, 0);
        assert_eq!(b[3].total, 1); // 60 in the open tail
        assert_eq!(b[3].errors, 1);
    }

    #[test]
    fn error_rates() {
        let b = error_rate_by_length(&[1, 2, 3, 4], &[true, false, false, false], &[10]);
        assert!((b[0].error_rate() - 0.75).abs() < 1e-12);
        assert_eq!(b[1].error_rate(), 0.0); // empty tail
    }

    #[test]
    fn labels() {
        let b = error_rate_by_length(&[], &[], &[10, 20]);
        assert_eq!(b[0].label(), "0-10");
        assert_eq!(b[1].label(), "11-20");
        assert_eq!(b[2].label(), "21+");
    }

    #[test]
    #[should_panic(expected = "edges must increase")]
    fn unsorted_edges_panic() {
        let _ = error_rate_by_length(&[], &[], &[10, 5]);
    }
}
