//! # pragformer-eval
//!
//! Evaluation machinery for the PragFormer reproduction:
//!
//! * [`metrics`] — precision / recall / F1 / accuracy and confusion
//!   matrices (Tables 8-11);
//! * [`buckets`] — error-rate-by-snippet-length histograms (Figure 7);
//! * [`lime`] — a LIME-style local explainer: token-mask perturbations,
//!   exponential-kernel sample weights and a weighted ridge regression
//!   solved by Cholesky decomposition (Figure 8);
//! * [`report`] — tiny table/TSV emitters used by every benchmark binary.
//!
//! The crate is model-agnostic: classifiers enter as closures over token
//! sequences, so the same code explains PragFormer, BoW, or anything else.

pub mod buckets;
pub mod lime;
pub mod metrics;
pub mod report;

pub use buckets::{error_rate_by_length, LengthBucket};
pub use lime::{explain, Explanation, LimeConfig};
pub use metrics::{confusion, BinaryMetrics, Confusion};
