//! Property tests: the printer is a fixed point under re-parsing for
//! arbitrary generated ASTs, and the DFS serialization is stable.

use pragformer_cparse::printer::{print_expr, print_stmts};
use pragformer_cparse::{dfs, parse_snippet, AssignOp, BinOp, Expr, ForInit, Stmt, UnOp};
use proptest::prelude::*;

/// Identifier pool: realistic loop/array names plus a couple of oddballs.
fn ident() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "i", "j", "k", "n", "m", "len", "size", "a", "b", "c", "A", "B", "vec", "arr", "mat",
        "sum", "total", "tmp", "x1", "y_1", "result",
    ])
    .prop_map(str::to_string)
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        ident().prop_map(Expr::Id),
        (0i64..1000).prop_map(Expr::int),
        (0i64..100).prop_map(|v| Expr::FloatLit(v as f64 + 0.5, format!("{v}.5"))),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = leaf_expr();
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (any::<u8>(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Mod,
                    BinOp::Lt,
                    BinOp::Gt,
                    BinOp::Le,
                    BinOp::Ge,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::BitAnd,
                    BinOp::BitOr,
                    BinOp::BitXor,
                    BinOp::Shl,
                    BinOp::Shr,
                ];
                Expr::bin(ops[op as usize % ops.len()], l, r)
            }),
            (any::<bool>(), inner.clone()).prop_map(|(neg, e)| Expr::Unary {
                op: if neg { UnOp::Neg } else { UnOp::Not },
                expr: Box::new(e),
            }),
            (ident(), inner.clone()).prop_map(|(a, i)| Expr::index(Expr::Id(a), i)),
            (ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| Expr::call(f, args)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::Ternary {
                cond: Box::new(c),
                then: Box::new(t),
                else_: Box::new(e),
            }),
        ]
    })
}

fn assign_stmt() -> impl Strategy<Value = Stmt> {
    (ident(), arb_expr(), any::<bool>(), arb_expr()).prop_map(|(name, idx, plain, rhs)| {
        let lhs = Expr::index(Expr::Id(name), idx);
        let op = if plain { AssignOp::Assign } else { AssignOp::Add };
        Stmt::Expr(Expr::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let base = assign_stmt();
    base.prop_recursive(3, 12, 4, |inner| {
        prop_oneof![
            (arb_expr(), inner.clone()).prop_map(|(c, b)| Stmt::If {
                cond: c,
                then: Box::new(b),
                else_: None,
            }),
            (ident(), arb_expr(), inner.clone()).prop_map(|(v, bound, body)| Stmt::For {
                init: ForInit::Expr(Expr::assign(Expr::Id(v.clone()), Expr::int(0))),
                cond: Some(Expr::bin(BinOp::Lt, Expr::Id(v.clone()), bound)),
                step: Some(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::Id(v)) }),
                body: Box::new(body),
            }),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Stmt::Compound),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_print_is_fixed_point(stmt in arb_stmt()) {
        let printed = print_stmts(std::slice::from_ref(&stmt));
        let reparsed = parse_snippet(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let printed2 = print_stmts(&reparsed);
        prop_assert_eq!(printed, printed2);
    }

    #[test]
    fn expr_print_parse_roundtrip_preserves_dfs(e in arb_expr()) {
        let src = format!("x = {};", print_expr(&e));
        let stmts = parse_snippet(&src)
            .unwrap_or_else(|err| panic!("parse failed: {err}\n{src}"));
        // Reprinting the reparsed expression matches the original print.
        match &stmts[0] {
            Stmt::Expr(Expr::Assign { rhs, .. }) => {
                prop_assert_eq!(print_expr(rhs), print_expr(&e));
            }
            other => prop_assert!(false, "unexpected shape {:?}", other),
        }
    }

    #[test]
    fn dfs_of_printed_equals_dfs_of_original(stmt in arb_stmt()) {
        let printed = print_stmts(std::slice::from_ref(&stmt));
        let reparsed = parse_snippet(&printed).unwrap();
        let a = dfs::serialize_stmts(std::slice::from_ref(&stmt));
        let b = dfs::serialize_stmts(&reparsed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn lexer_never_panics_on_ascii(src in "[ -~\n\t]{0,200}") {
        // Errors are fine; panics are not.
        let _ = pragformer_cparse::lex(&src);
    }

    #[test]
    fn parser_never_panics_on_ascii(src in "[ -~\n\t]{0,200}") {
        let _ = parse_snippet(&src);
    }
}
