//! C lexer with source positions.
//!
//! Comments are skipped; preprocessor lines are skipped *except*
//! `#pragma omp …`, which becomes a [`Token::OmpPragma`] carrying the raw
//! clause text (with backslash line-continuations spliced) so the parser
//! can attach it to the following statement.

use std::fmt;

/// Lexical token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or non-keyword word.
    Ident(String),
    /// Reserved word (`for`, `int`, …).
    Keyword(Keyword),
    /// Integer literal (value + original text for faithful printing).
    IntLit(i64, String),
    /// Floating literal (value + original text).
    FloatLit(f64, String),
    /// Character literal.
    CharLit(char),
    /// String literal (unescaped content).
    StrLit(String),
    /// Punctuation / operator.
    Punct(Punct),
    /// `#pragma omp <raw>`; `raw` excludes the `#pragma omp` prefix.
    OmpPragma(String),
}

/// C keywords recognized by the subset grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Void,
    Char,
    Short,
    Int,
    Long,
    Float,
    Double,
    Signed,
    Unsigned,
    For,
    While,
    Do,
    If,
    Else,
    Return,
    Break,
    Continue,
    Const,
    Static,
    Register,
    Volatile,
    Extern,
    Struct,
    Union,
    Enum,
    Typedef,
    Sizeof,
    Goto,
    Switch,
    Case,
    Default,
    Inline,
    Restrict,
}

impl Keyword {
    /// Keyword spelling as written in source.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Void => "void",
            Char => "char",
            Short => "short",
            Int => "int",
            Long => "long",
            Float => "float",
            Double => "double",
            Signed => "signed",
            Unsigned => "unsigned",
            For => "for",
            While => "while",
            Do => "do",
            If => "if",
            Else => "else",
            Return => "return",
            Break => "break",
            Continue => "continue",
            Const => "const",
            Static => "static",
            Register => "register",
            Volatile => "volatile",
            Extern => "extern",
            Struct => "struct",
            Union => "union",
            Enum => "enum",
            Typedef => "typedef",
            Sizeof => "sizeof",
            Goto => "goto",
            Switch => "switch",
            Case => "case",
            Default => "default",
            Inline => "inline",
            Restrict => "restrict",
        }
    }

    fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "void" => Void,
            "char" => Char,
            "short" => Short,
            "int" => Int,
            "long" => Long,
            "float" => Float,
            "double" => Double,
            "signed" => Signed,
            "unsigned" => Unsigned,
            "for" => For,
            "while" => While,
            "do" => Do,
            "if" => If,
            "else" => Else,
            "return" => Return,
            "break" => Break,
            "continue" => Continue,
            "const" => Const,
            "static" => Static,
            "register" => Register,
            "volatile" => Volatile,
            "extern" => Extern,
            "struct" => Struct,
            "union" => Union,
            "enum" => Enum,
            "typedef" => Typedef,
            "sizeof" => Sizeof,
            "goto" => Goto,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "inline" => Inline,
            "restrict" => Restrict,
            _ => return None,
        })
    }
}

/// Operators and punctuation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Colon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    EqEq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,
    AmpAmp,
    PipePipe,
    Not,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Arrow,
    Dot,
}

impl Punct {
    /// Operator spelling as written in source.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semicolon => ";",
            Comma => ",",
            Colon => ":",
            Question => "?",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            PlusPlus => "++",
            MinusMinus => "--",
            Eq => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            EqEq => "==",
            NotEq => "!=",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            AmpAmp => "&&",
            PipePipe => "||",
            Not => "!",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Shl => "<<",
            Shr => ">>",
            Arrow => "->",
            Dot => ".",
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Keyword(k) => write!(f, "{}", k.as_str()),
            Token::IntLit(_, text) => write!(f, "{text}"),
            Token::FloatLit(_, text) => write!(f, "{text}"),
            Token::CharLit(c) => write!(f, "'{c}'"),
            Token::StrLit(s) => write!(f, "\"{s}\""),
            Token::Punct(p) => write!(f, "{}", p.as_str()),
            Token::OmpPragma(raw) => write!(f, "#pragma omp{raw}"),
        }
    }
}

/// A token plus its 1-based source position.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub tok: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Lexing failure with position.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub msg: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError { msg: msg.into(), line: self.line, col: self.col }
    }
}

/// Tokenizes C source.
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, LexError> {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    let mut at_line_start = true;
    while let Some(c) = cur.peek() {
        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                at_line_start = true;
            }
            cur.bump();
            continue;
        }
        // Comments.
        if c == b'/' && cur.peek2() == Some(b'/') {
            while let Some(c) = cur.peek() {
                if c == b'\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == b'/' && cur.peek2() == Some(b'*') {
            cur.bump();
            cur.bump();
            loop {
                match cur.bump() {
                    Some(b'*') if cur.peek() == Some(b'/') => {
                        cur.bump();
                        break;
                    }
                    Some(_) => {}
                    None => return Err(cur.err("unterminated block comment")),
                }
            }
            continue;
        }
        // Preprocessor.
        if c == b'#' && at_line_start {
            let (line, col) = (cur.line, cur.col);
            let mut text = String::new();
            loop {
                match cur.peek() {
                    Some(b'\\') if cur.peek2() == Some(b'\n') => {
                        // Line splice: swallow both, keep going.
                        cur.bump();
                        cur.bump();
                        text.push(' ');
                    }
                    Some(b'\n') | None => break,
                    Some(ch) => {
                        text.push(ch as char);
                        cur.bump();
                    }
                }
            }
            let trimmed = text.trim_start_matches('#').trim_start();
            if let Some(rest) = trimmed.strip_prefix("pragma") {
                let rest = rest.trim_start();
                if let Some(omp) = rest.strip_prefix("omp") {
                    out.push(SpannedToken { tok: Token::OmpPragma(omp.to_string()), line, col });
                }
                // Non-omp pragmas are skipped like other preprocessor lines.
            }
            at_line_start = true;
            continue;
        }
        at_line_start = false;
        let (line, col) = (cur.line, cur.col);
        let tok = lex_one(&mut cur)?;
        out.push(SpannedToken { tok, line, col });
    }
    Ok(out)
}

fn lex_one(cur: &mut Cursor) -> Result<Token, LexError> {
    let c = cur.peek().expect("lex_one on empty input");
    if c.is_ascii_alphabetic() || c == b'_' {
        let mut s = String::new();
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.push(c as char);
                cur.bump();
            } else {
                break;
            }
        }
        return Ok(match Keyword::from_str(&s) {
            Some(k) => Token::Keyword(k),
            None => Token::Ident(s),
        });
    }
    if c.is_ascii_digit() || (c == b'.' && cur.peek2().is_some_and(|d| d.is_ascii_digit())) {
        return lex_number(cur);
    }
    if c == b'\'' {
        return lex_char(cur);
    }
    if c == b'"' {
        return lex_string(cur);
    }
    lex_punct(cur)
}

fn lex_number(cur: &mut Cursor) -> Result<Token, LexError> {
    let mut text = String::new();
    let mut is_float = false;
    // Hex?
    if cur.peek() == Some(b'0') && matches!(cur.peek2(), Some(b'x') | Some(b'X')) {
        text.push(cur.bump().unwrap() as char);
        text.push(cur.bump().unwrap() as char);
        while let Some(c) = cur.peek() {
            if c.is_ascii_hexdigit() {
                text.push(c as char);
                cur.bump();
            } else {
                break;
            }
        }
        let v = i64::from_str_radix(&text[2..], 16)
            .map_err(|_| cur.err(format!("bad hex literal {text}")))?;
        skip_int_suffix(cur, &mut text);
        return Ok(Token::IntLit(v, text));
    }
    while let Some(c) = cur.peek() {
        match c {
            b'0'..=b'9' => {
                text.push(c as char);
                cur.bump();
            }
            b'.' if !is_float => {
                is_float = true;
                text.push('.');
                cur.bump();
            }
            b'e' | b'E' => {
                is_float = true;
                text.push(c as char);
                cur.bump();
                if matches!(cur.peek(), Some(b'+') | Some(b'-')) {
                    text.push(cur.bump().unwrap() as char);
                }
            }
            _ => break,
        }
    }
    if is_float {
        let v: f64 = text.parse().map_err(|_| cur.err(format!("bad float literal {text}")))?;
        if matches!(cur.peek(), Some(b'f') | Some(b'F') | Some(b'l') | Some(b'L')) {
            text.push(cur.bump().unwrap() as char);
        }
        Ok(Token::FloatLit(v, text))
    } else {
        let v: i64 = if text.len() > 1 && text.starts_with('0') {
            i64::from_str_radix(&text[1..], 8)
                .map_err(|_| cur.err(format!("bad octal literal {text}")))?
        } else {
            text.parse().map_err(|_| cur.err(format!("bad int literal {text}")))?
        };
        skip_int_suffix(cur, &mut text);
        Ok(Token::IntLit(v, text))
    }
}

fn skip_int_suffix(cur: &mut Cursor, text: &mut String) {
    while matches!(cur.peek(), Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')) {
        text.push(cur.bump().unwrap() as char);
    }
}

fn lex_char(cur: &mut Cursor) -> Result<Token, LexError> {
    cur.bump(); // opening quote
    let c = match cur.bump() {
        Some(b'\\') => match cur.bump() {
            Some(b'n') => '\n',
            Some(b't') => '\t',
            Some(b'r') => '\r',
            Some(b'0') => '\0',
            Some(b'\\') => '\\',
            Some(b'\'') => '\'',
            Some(b'"') => '"',
            _ => return Err(cur.err("bad escape in char literal")),
        },
        Some(c) => c as char,
        None => return Err(cur.err("unterminated char literal")),
    };
    if cur.bump() != Some(b'\'') {
        return Err(cur.err("unterminated char literal"));
    }
    Ok(Token::CharLit(c))
}

fn lex_string(cur: &mut Cursor) -> Result<Token, LexError> {
    cur.bump(); // opening quote
    let mut s = String::new();
    loop {
        match cur.bump() {
            Some(b'"') => break,
            Some(b'\\') => match cur.bump() {
                Some(b'n') => s.push('\n'),
                Some(b't') => s.push('\t'),
                Some(b'r') => s.push('\r'),
                Some(b'0') => s.push('\0'),
                Some(b'\\') => s.push('\\'),
                Some(b'"') => s.push('"'),
                Some(b'\'') => s.push('\''),
                Some(b'%') => {
                    s.push('\\');
                    s.push('%');
                }
                _ => return Err(cur.err("bad escape in string literal")),
            },
            Some(b'\n') | None => return Err(cur.err("unterminated string literal")),
            Some(c) => s.push(c as char),
        }
    }
    Ok(Token::StrLit(s))
}

fn lex_punct(cur: &mut Cursor) -> Result<Token, LexError> {
    use Punct::*;
    let c = cur.bump().unwrap();
    let two = |cur: &mut Cursor, next: u8, yes: Punct, no: Punct| {
        if cur.peek() == Some(next) {
            cur.bump();
            yes
        } else {
            no
        }
    };
    let p = match c {
        b'(' => LParen,
        b')' => RParen,
        b'{' => LBrace,
        b'}' => RBrace,
        b'[' => LBracket,
        b']' => RBracket,
        b';' => Semicolon,
        b',' => Comma,
        b'?' => Question,
        b':' => Colon,
        b'~' => Tilde,
        b'.' => Dot,
        b'+' => match cur.peek() {
            Some(b'+') => {
                cur.bump();
                PlusPlus
            }
            Some(b'=') => {
                cur.bump();
                PlusEq
            }
            _ => Plus,
        },
        b'-' => match cur.peek() {
            Some(b'-') => {
                cur.bump();
                MinusMinus
            }
            Some(b'=') => {
                cur.bump();
                MinusEq
            }
            Some(b'>') => {
                cur.bump();
                Arrow
            }
            _ => Minus,
        },
        b'*' => two(cur, b'=', StarEq, Star),
        b'/' => two(cur, b'=', SlashEq, Slash),
        b'%' => two(cur, b'=', PercentEq, Percent),
        b'=' => two(cur, b'=', EqEq, Eq),
        b'!' => two(cur, b'=', NotEq, Not),
        b'<' => match cur.peek() {
            Some(b'=') => {
                cur.bump();
                Le
            }
            Some(b'<') => {
                cur.bump();
                two(cur, b'=', ShlEq, Shl)
            }
            _ => Lt,
        },
        b'>' => match cur.peek() {
            Some(b'=') => {
                cur.bump();
                Ge
            }
            Some(b'>') => {
                cur.bump();
                two(cur, b'=', ShrEq, Shr)
            }
            _ => Gt,
        },
        b'&' => match cur.peek() {
            Some(b'&') => {
                cur.bump();
                AmpAmp
            }
            Some(b'=') => {
                cur.bump();
                AmpEq
            }
            _ => Amp,
        },
        b'|' => match cur.peek() {
            Some(b'|') => {
                cur.bump();
                PipePipe
            }
            Some(b'=') => {
                cur.bump();
                PipeEq
            }
            _ => Pipe,
        },
        b'^' => two(cur, b'=', CaretEq, Caret),
        other => return Err(cur.err(format!("unexpected character '{}'", other as char))),
    };
    Ok(Token::Punct(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_for_loop() {
        let t = toks("for (i = 0; i < n; i++) a[i] = i;");
        assert_eq!(t[0], Token::Keyword(Keyword::For));
        assert_eq!(t[1], Token::Punct(Punct::LParen));
        assert_eq!(t[2], Token::Ident("i".into()));
        assert!(t.contains(&Token::Punct(Punct::PlusPlus)));
        assert!(t.contains(&Token::Punct(Punct::LBracket)));
    }

    #[test]
    fn numbers_dec_hex_octal_float() {
        let t = toks("42 0x2A 052 3.5 1e3 2.5f 7ul");
        assert_eq!(t[0], Token::IntLit(42, "42".into()));
        assert_eq!(t[1], Token::IntLit(42, "0x2A".into()));
        assert_eq!(t[2], Token::IntLit(42, "052".into()));
        assert!(matches!(t[3], Token::FloatLit(v, _) if (v - 3.5).abs() < 1e-12));
        assert!(matches!(t[4], Token::FloatLit(v, _) if (v - 1000.0).abs() < 1e-9));
        assert!(matches!(&t[5], Token::FloatLit(v, s) if (*v - 2.5).abs() < 1e-12 && s == "2.5f"));
        assert!(matches!(&t[6], Token::IntLit(7, s) if s == "7ul"));
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("a // line comment\n/* block\ncomment */ b");
        assert_eq!(t, vec![Token::Ident("a".into()), Token::Ident("b".into())]);
    }

    #[test]
    fn pragma_omp_is_kept_other_preprocessor_skipped() {
        let src =
            "#include <stdio.h>\n#define N 100\n#pragma omp parallel for private(i)\nfor(;;);";
        let t = toks(src);
        assert_eq!(t[0], Token::OmpPragma(" parallel for private(i)".into()));
        assert_eq!(t[1], Token::Keyword(Keyword::For));
    }

    #[test]
    fn pragma_line_continuation_is_spliced() {
        let src = "#pragma omp parallel for \\\n  private(j)\nx;";
        let t = toks(src);
        match &t[0] {
            Token::OmpPragma(raw) => assert!(raw.contains("private(j)"), "{raw}"),
            other => panic!("expected pragma, got {other:?}"),
        }
    }

    #[test]
    fn multi_char_operators() {
        let t = toks("a <<= b >> c != d && e || f -> g . h");
        assert!(t.contains(&Token::Punct(Punct::ShlEq)));
        assert!(t.contains(&Token::Punct(Punct::Shr)));
        assert!(t.contains(&Token::Punct(Punct::NotEq)));
        assert!(t.contains(&Token::Punct(Punct::AmpAmp)));
        assert!(t.contains(&Token::Punct(Punct::PipePipe)));
        assert!(t.contains(&Token::Punct(Punct::Arrow)));
        assert!(t.contains(&Token::Punct(Punct::Dot)));
    }

    #[test]
    fn string_and_char_literals() {
        let t = toks(r#"printf("%0.2lf \n", x) 'a' '\n'"#);
        assert!(matches!(&t[2], Token::StrLit(s) if s.contains("%0.2lf")));
        assert!(t.contains(&Token::CharLit('a')));
        assert!(t.contains(&Token::CharLit('\n')));
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        let t = toks("inti int register registers");
        assert_eq!(t[0], Token::Ident("inti".into()));
        assert_eq!(t[1], Token::Keyword(Keyword::Int));
        assert_eq!(t[2], Token::Keyword(Keyword::Register));
        assert_eq!(t[3], Token::Ident("registers".into()));
    }
}
