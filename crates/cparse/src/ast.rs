//! Abstract syntax tree, modelled on pycparser's node vocabulary so the
//! DFS serialization in [`crate::dfs`] matches the paper's Tables 2 and 6.

use crate::omp::OmpDirective;

/// A whole file: functions and file-scope declarations.
#[derive(Clone, Debug, PartialEq)]
pub struct TranslationUnit {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Top-level item.
///
/// `Func` is much larger than `Decl`; items are built once per record and
/// never stored in bulk, so boxing would only add indirection.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Item {
    /// A function definition with a body.
    Func(FuncDef),
    /// A file-scope declaration line (may declare several names).
    Decl(Vec<Decl>),
}

/// Function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<ParamDecl>,
    /// Body (always a [`Stmt::Compound`]).
    pub body: Stmt,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamDecl {
    /// Parameter name (empty for abstract declarators like `void f(int)`).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Array dimensions, outermost first; `None` dimension = unsized (`[]`).
    pub array_dims: Vec<Option<Expr>>,
}

/// Simplified C type: base + pointer depth + qualifiers.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Type {
    /// Fundamental or named base type.
    pub base: BaseType,
    /// Number of `*`s.
    pub pointers: usize,
    /// `unsigned` flag.
    pub unsigned: bool,
    /// `const` qualifier seen anywhere in the specifier list.
    pub is_const: bool,
    /// `static` storage class.
    pub is_static: bool,
    /// `register` storage class (kept because the strict ComPar front-end
    /// rejects it — see the paper's SPEC-OMP parse failures).
    pub is_register: bool,
}

/// Fundamental type or a named (struct/typedef) type.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum BaseType {
    /// `void`
    Void,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `int`
    #[default]
    Int,
    /// `long`
    Long,
    /// `long long`
    LongLong,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `struct <name>`
    Struct(String),
    /// A typedef-style name we don't resolve (e.g. `size_t`, `ssize_t`,
    /// `IndexPacket`) — kept nominal, exactly how pycparser would surface
    /// an unknown typedef after a fake-libc include.
    Named(String),
}

impl Type {
    /// Plain `int`.
    pub fn int() -> Self {
        Type::default()
    }

    /// Plain `double`.
    pub fn double() -> Self {
        Type { base: BaseType::Double, ..Default::default() }
    }

    /// Plain `float`.
    pub fn float() -> Self {
        Type { base: BaseType::Float, ..Default::default() }
    }

    /// Adds pointer levels.
    pub fn ptr(mut self, levels: usize) -> Self {
        self.pointers += levels;
        self
    }

    /// True for any integer-ish base (used by dependence analysis to pick
    /// loop counters).
    pub fn is_integer(&self) -> bool {
        matches!(
            self.base,
            BaseType::Char | BaseType::Short | BaseType::Int | BaseType::Long | BaseType::LongLong
        ) && self.pointers == 0
    }
}

/// One declared name with optional array dims and initializer.
#[derive(Clone, Debug, PartialEq)]
pub struct Decl {
    /// Declared name.
    pub name: String,
    /// Base type (shared across a multi-declarator line).
    pub ty: Type,
    /// Array dimensions, outermost first.
    pub array_dims: Vec<Option<Expr>>,
    /// Initializer.
    pub init: Option<Init>,
}

/// Initializer forms.
#[derive(Clone, Debug, PartialEq)]
pub enum Init {
    /// `= expr`
    Expr(Expr),
    /// `= {e, e, …}`
    List(Vec<Expr>),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `{ … }`
    Compound(Vec<Stmt>),
    /// Declaration line.
    Decl(Vec<Decl>),
    /// Expression statement.
    Expr(Expr),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Box<Stmt>,
        /// Optional else-branch.
        else_: Option<Box<Stmt>>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Init clause.
        init: ForInit,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `return expr;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// An OpenMP pragma attached to the following statement
    /// (pycparser surfaces pragmas as sibling nodes; attaching keeps the
    /// loop/directive link the corpus needs).
    Pragma {
        /// Parsed directive.
        directive: OmpDirective,
        /// The governed statement (for `parallel for`, a `For`).
        stmt: Box<Stmt>,
    },
    /// `;`
    Empty,
}

/// The init clause of a `for`.
#[derive(Clone, Debug, PartialEq)]
pub enum ForInit {
    /// Nothing before the first `;`.
    Empty,
    /// `int i = 0` style declaration(s).
    Decl(Vec<Decl>),
    /// `i = 0` style expression.
    Expr(Expr),
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// Spelling used by both the printer and the pycparser-style DFS dump.
    pub fn as_str(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            And => "&&",
            Or => "||",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Shl => "<<",
            Shr => ">>",
        }
    }
}

/// Unary operators. `p++`/`p--` follow pycparser's spelling for the
/// postfix forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
    PreInc,
    PreDec,
    PostInc,
    PostDec,
    Deref,
    AddrOf,
}

impl UnOp {
    /// pycparser-style spelling (`p++` for postfix increment).
    pub fn as_str(self) -> &'static str {
        use UnOp::*;
        match self {
            Neg => "-",
            Not => "!",
            BitNot => "~",
            PreInc => "++",
            PreDec => "--",
            PostInc => "p++",
            PostDec => "p--",
            Deref => "*",
            AddrOf => "&",
        }
    }
}

/// Assignment operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
}

impl AssignOp {
    /// Spelling (`=`, `+=`, …).
    pub fn as_str(self) -> &'static str {
        use AssignOp::*;
        match self {
            Assign => "=",
            Add => "+=",
            Sub => "-=",
            Mul => "*=",
            Div => "/=",
            Mod => "%=",
            Shl => "<<=",
            Shr => ">>=",
            BitAnd => "&=",
            BitOr => "|=",
            BitXor => "^=",
        }
    }

    /// The arithmetic op a compound assignment applies, `None` for `=`.
    pub fn binop(self) -> Option<BinOp> {
        use AssignOp::*;
        Some(match self {
            Assign => return None,
            Add => BinOp::Add,
            Sub => BinOp::Sub,
            Mul => BinOp::Mul,
            Div => BinOp::Div,
            Mod => BinOp::Mod,
            Shl => BinOp::Shl,
            Shr => BinOp::Shr,
            BitAnd => BinOp::BitAnd,
            BitOr => BinOp::BitOr,
            BitXor => BinOp::BitXor,
        })
    }
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Identifier.
    Id(String),
    /// Integer constant (value + source text).
    IntLit(i64, String),
    /// Floating constant (value + source text).
    FloatLit(f64, String),
    /// Character constant.
    CharLit(char),
    /// String literal.
    StrLit(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator (encodes pre/post for inc/dec).
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Assignment (an expression in C).
    Assign {
        /// `=`, `+=`, …
        op: AssignOp,
        /// Target lvalue.
        lhs: Box<Expr>,
        /// Source value.
        rhs: Box<Expr>,
    },
    /// `cond ? then : else`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        else_: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee (usually an [`Expr::Id`]).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base[idx]`
    Index {
        /// Array expression.
        base: Box<Expr>,
        /// Subscript.
        idx: Box<Expr>,
    },
    /// `base.field` / `base->field`
    Member {
        /// Struct expression.
        base: Box<Expr>,
        /// Member name.
        field: String,
        /// True for `->`.
        arrow: bool,
    },
    /// `(type) expr`
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `sizeof(type-or-expr)` — operand kept as an expression or type name.
    Sizeof(Box<SizeofArg>),
    /// Comma expression `a, b`.
    Comma(Box<Expr>, Box<Expr>),
}

/// The operand of `sizeof`.
#[derive(Clone, Debug, PartialEq)]
pub enum SizeofArg {
    /// `sizeof(expr)`
    Expr(Expr),
    /// `sizeof(type)`
    Type(Type),
}

impl Expr {
    /// Convenience: identifier expression.
    pub fn id(name: impl Into<String>) -> Expr {
        Expr::Id(name.into())
    }

    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v, v.to_string())
    }

    /// Convenience: `l op r`.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary { op, l: Box::new(l), r: Box::new(r) }
    }

    /// Convenience: `lhs = rhs`.
    pub fn assign(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Assign { op: AssignOp::Assign, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Convenience: `base[idx]`.
    pub fn index(base: Expr, idx: Expr) -> Expr {
        Expr::Index { base: Box::new(base), idx: Box::new(idx) }
    }

    /// Convenience: `name(args…)`.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call { callee: Box::new(Expr::Id(name.into())), args }
    }

    /// Walks the expression tree, calling `f` on every node (pre-order).
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Binary { l, r, .. } => {
                l.walk(f);
                r.walk(f);
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Assign { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Ternary { cond, then, else_ } => {
                cond.walk(f);
                then.walk(f);
                else_.walk(f);
            }
            Expr::Call { callee, args } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Index { base, idx } => {
                base.walk(f);
                idx.walk(f);
            }
            Expr::Member { base, .. } => base.walk(f),
            Expr::Cast { expr, .. } => expr.walk(f),
            Expr::Sizeof(arg) => {
                if let SizeofArg::Expr(e) = arg.as_ref() {
                    e.walk(f);
                }
            }
            Expr::Comma(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Id(_)
            | Expr::IntLit(..)
            | Expr::FloatLit(..)
            | Expr::CharLit(_)
            | Expr::StrLit(_) => {}
        }
    }
}

impl Stmt {
    /// Walks the statement tree (pre-order), visiting nested statements.
    pub fn walk(&self, f: &mut dyn FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::Compound(stmts) => {
                for s in stmts {
                    s.walk(f);
                }
            }
            Stmt::If { then, else_, .. } => {
                then.walk(f);
                if let Some(e) = else_ {
                    e.walk(f);
                }
            }
            Stmt::For { body, .. } => body.walk(f),
            Stmt::While { body, .. } => body.walk(f),
            Stmt::DoWhile { body, .. } => body.walk(f),
            Stmt::Pragma { stmt, .. } => stmt.walk(f),
            Stmt::Decl(_)
            | Stmt::Expr(_)
            | Stmt::Return(_)
            | Stmt::Break
            | Stmt::Continue
            | Stmt::Empty => {}
        }
    }

    /// Walks every expression inside this statement tree (pre-order).
    pub fn walk_exprs(&self, f: &mut dyn FnMut(&Expr)) {
        self.walk(&mut |s| match s {
            Stmt::Expr(e) => e.walk(f),
            Stmt::If { cond, .. } => cond.walk(f),
            Stmt::While { cond, .. } => cond.walk(f),
            Stmt::DoWhile { cond, .. } => cond.walk(f),
            Stmt::Return(Some(e)) => e.walk(f),
            Stmt::For { init, cond, step, .. } => {
                if let ForInit::Expr(e) = init {
                    e.walk(f);
                }
                if let ForInit::Decl(decls) = init {
                    for d in decls {
                        if let Some(Init::Expr(e)) = &d.init {
                            e.walk(f);
                        }
                    }
                }
                if let Some(c) = cond {
                    c.walk(f);
                }
                if let Some(st) = step {
                    st.walk(f);
                }
            }
            Stmt::Decl(decls) => {
                for d in decls {
                    match &d.init {
                        Some(Init::Expr(e)) => e.walk(f),
                        Some(Init::List(es)) => {
                            for e in es {
                                e.walk(f);
                            }
                        }
                        None => {}
                    }
                }
            }
            _ => {}
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::assign(
            Expr::index(Expr::id("a"), Expr::id("i")),
            Expr::bin(BinOp::Add, Expr::id("i"), Expr::int(1)),
        );
        match e {
            Expr::Assign { op: AssignOp::Assign, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::call("f", vec![Expr::id("x")]),
            Expr::index(Expr::id("a"), Expr::int(3)),
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        // Binary, Call, Id(f), Id(x), Index, Id(a), IntLit
        assert_eq!(count, 7);
    }

    #[test]
    fn stmt_walk_exprs_reaches_for_clauses() {
        let s = Stmt::For {
            init: ForInit::Expr(Expr::assign(Expr::id("i"), Expr::int(0))),
            cond: Some(Expr::bin(BinOp::Lt, Expr::id("i"), Expr::id("n"))),
            step: Some(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::id("i")) }),
            body: Box::new(Stmt::Expr(Expr::assign(
                Expr::index(Expr::id("a"), Expr::id("i")),
                Expr::id("i"),
            ))),
        };
        let mut ids = Vec::new();
        s.walk_exprs(&mut |e| {
            if let Expr::Id(name) = e {
                ids.push(name.clone());
            }
        });
        ids.sort();
        assert_eq!(ids, vec!["a", "i", "i", "i", "i", "i", "n"]);
    }

    #[test]
    fn assign_op_binop_mapping() {
        assert_eq!(AssignOp::Assign.binop(), None);
        assert_eq!(AssignOp::Add.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::Shl.binop(), Some(BinOp::Shl));
    }

    #[test]
    fn type_helpers() {
        assert!(Type::int().is_integer());
        assert!(!Type::double().is_integer());
        assert!(!Type::int().ptr(1).is_integer());
    }
}
