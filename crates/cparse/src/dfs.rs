//! pycparser-style DFS serialization of the AST.
//!
//! The paper's AST representation (Tables 2 and 6) is the pre-order DFS of
//! pycparser's tree, one label per node, e.g.
//!
//! ```text
//! For: Assignment: = ID: i Constant: int, 0 BinaryOp: < ID: i ID: len
//! UnaryOp: p++ ID: i Assignment: = ArrayRef: ID: a ID: i ID: i
//! ```
//!
//! [`serialize_stmts`] returns the label sequence; the tokenizer crate
//! flattens labels into sub-tokens (`"Assignment:"`, `"="`, …).

use crate::ast::*;

/// Serializes statements into DFS node labels.
pub fn serialize_stmts(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    for s in stmts {
        stmt_labels(s, &mut out);
    }
    out
}

/// Serializes one expression into DFS node labels.
pub fn serialize_expr(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    expr_labels(e, &mut out);
    out
}

/// Flattens labels into the single-string form shown in the paper's
/// Table 6.
pub fn flat(labels: &[String]) -> String {
    labels.join(" ")
}

fn type_name(t: &Type) -> String {
    let base = match &t.base {
        BaseType::Void => "void",
        BaseType::Char => "char",
        BaseType::Short => "short",
        BaseType::Int => "int",
        BaseType::Long => "long",
        BaseType::LongLong => "long long",
        BaseType::Float => "float",
        BaseType::Double => "double",
        BaseType::Struct(n) => return format!("struct {n}"),
        BaseType::Named(n) => return n.clone(),
    };
    if t.unsigned {
        format!("unsigned {base}")
    } else {
        base.to_string()
    }
}

fn stmt_labels(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Compound(stmts) => {
            out.push("Compound:".into());
            for st in stmts {
                stmt_labels(st, out);
            }
        }
        Stmt::Decl(decls) => {
            for d in decls {
                out.push(format!("Decl: {}", d.name));
                out.push(format!("TypeDecl: {}", type_name(&d.ty)));
                for dim in d.array_dims.iter().flatten() {
                    out.push("ArrayDecl:".into());
                    expr_labels(dim, out);
                }
                match &d.init {
                    Some(Init::Expr(e)) => expr_labels(e, out),
                    Some(Init::List(es)) => {
                        out.push("InitList:".into());
                        for e in es {
                            expr_labels(e, out);
                        }
                    }
                    None => {}
                }
            }
        }
        Stmt::Expr(e) => expr_labels(e, out),
        Stmt::If { cond, then, else_ } => {
            out.push("If:".into());
            expr_labels(cond, out);
            stmt_labels(then, out);
            if let Some(e) = else_ {
                stmt_labels(e, out);
            }
        }
        Stmt::For { init, cond, step, body } => {
            out.push("For:".into());
            match init {
                ForInit::Empty => {}
                ForInit::Decl(decls) => {
                    // pycparser nests DeclList under For.
                    out.push("DeclList:".into());
                    for d in decls {
                        out.push(format!("Decl: {}", d.name));
                        out.push(format!("TypeDecl: {}", type_name(&d.ty)));
                        if let Some(Init::Expr(e)) = &d.init {
                            expr_labels(e, out);
                        }
                    }
                }
                ForInit::Expr(e) => expr_labels(e, out),
            }
            if let Some(c) = cond {
                expr_labels(c, out);
            }
            if let Some(st) = step {
                expr_labels(st, out);
            }
            stmt_labels(body, out);
        }
        Stmt::While { cond, body } => {
            out.push("While:".into());
            expr_labels(cond, out);
            stmt_labels(body, out);
        }
        Stmt::DoWhile { body, cond } => {
            out.push("DoWhile:".into());
            stmt_labels(body, out);
            expr_labels(cond, out);
        }
        Stmt::Return(e) => {
            out.push("Return:".into());
            if let Some(e) = e {
                expr_labels(e, out);
            }
        }
        Stmt::Break => out.push("Break:".into()),
        Stmt::Continue => out.push("Continue:".into()),
        Stmt::Pragma { directive, stmt } => {
            // pycparser represents pragmas as `Pragma:` leaves; the model
            // never sees the directive text (it is the *label*), so only
            // the marker node is serialized.
            let _ = directive;
            out.push("Pragma:".into());
            stmt_labels(stmt, out);
        }
        Stmt::Empty => out.push("EmptyStatement:".into()),
    }
}

fn expr_labels(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Id(n) => out.push(format!("ID: {n}")),
        Expr::IntLit(_, text) => out.push(format!("Constant: int, {text}")),
        Expr::FloatLit(_, text) => out.push(format!("Constant: double, {text}")),
        Expr::CharLit(c) => out.push(format!("Constant: char, '{c}'")),
        Expr::StrLit(s) => out.push(format!("Constant: string, \"{s}\"")),
        Expr::Binary { op, l, r } => {
            out.push(format!("BinaryOp: {}", op.as_str()));
            expr_labels(l, out);
            expr_labels(r, out);
        }
        Expr::Unary { op, expr } => {
            out.push(format!("UnaryOp: {}", op.as_str()));
            expr_labels(expr, out);
        }
        Expr::Assign { op, lhs, rhs } => {
            out.push(format!("Assignment: {}", op.as_str()));
            expr_labels(lhs, out);
            expr_labels(rhs, out);
        }
        Expr::Ternary { cond, then, else_ } => {
            out.push("TernaryOp:".into());
            expr_labels(cond, out);
            expr_labels(then, out);
            expr_labels(else_, out);
        }
        Expr::Call { callee, args } => {
            out.push("FuncCall:".into());
            expr_labels(callee, out);
            if !args.is_empty() {
                out.push("ExprList:".into());
                for a in args {
                    expr_labels(a, out);
                }
            }
        }
        Expr::Index { base, idx } => {
            out.push("ArrayRef:".into());
            expr_labels(base, out);
            expr_labels(idx, out);
        }
        Expr::Member { base, field, arrow } => {
            out.push(format!("StructRef: {}", if *arrow { "->" } else { "." }));
            expr_labels(base, out);
            out.push(format!("ID: {field}"));
        }
        Expr::Cast { ty, expr } => {
            out.push(format!("Cast: {}", type_name(ty)));
            expr_labels(expr, out);
        }
        Expr::Sizeof(arg) => match arg.as_ref() {
            SizeofArg::Expr(e) => {
                out.push("UnaryOp: sizeof".into());
                expr_labels(e, out);
            }
            SizeofArg::Type(t) => {
                out.push("UnaryOp: sizeof".into());
                out.push(format!("Typename: {}", type_name(t)));
            }
        },
        Expr::Comma(a, b) => {
            out.push("ExprList:".into());
            expr_labels(a, out);
            expr_labels(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_snippet;

    #[test]
    fn paper_table6_example_shape() {
        // for (i = 0; i < len; i++) a[i] = i;
        let stmts = parse_snippet("for (i = 0; i < len; i++) a[i] = i;").unwrap();
        let labels = serialize_stmts(&stmts);
        let flat = flat(&labels);
        assert_eq!(
            flat,
            "For: Assignment: = ID: i Constant: int, 0 BinaryOp: < ID: i ID: len \
             UnaryOp: p++ ID: i Assignment: = ArrayRef: ID: a ID: i ID: i"
        );
    }

    #[test]
    fn paper_table2_if_example_shape() {
        let stmts =
            parse_snippet("for (i = 0; i <= N; i++)\n  if (MoreCalc(i))\n    Calc(i);").unwrap();
        let labels = serialize_stmts(&stmts);
        let flat = flat(&labels);
        assert!(flat.starts_with("For: Assignment: = ID: i Constant: int, 0 BinaryOp: <="));
        assert!(flat.contains("If: FuncCall: ID: MoreCalc ExprList: ID: i"));
        assert!(flat.contains("FuncCall: ID: Calc ExprList: ID: i"));
    }

    #[test]
    fn pragma_serializes_as_marker_only() {
        let stmts =
            parse_snippet("#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = 0;").unwrap();
        let labels = serialize_stmts(&stmts);
        assert_eq!(labels[0], "Pragma:");
        assert_eq!(labels[1], "For:");
        assert!(!flat(&labels).contains("private"));
    }

    #[test]
    fn declarations_and_types() {
        let stmts = parse_snippet("unsigned long x = 3; double v[100];").unwrap();
        let labels = serialize_stmts(&stmts);
        assert!(labels.contains(&"Decl: x".to_string()));
        assert!(labels.contains(&"TypeDecl: unsigned long".to_string()));
        assert!(labels.contains(&"ArrayDecl:".to_string()));
    }

    #[test]
    fn struct_member_and_cast() {
        let stmts = parse_snippet("image->colormap[i].opacity = (IndexPacket) i;").unwrap();
        let flat = flat(&serialize_stmts(&stmts));
        assert!(flat.contains("StructRef: ."));
        assert!(flat.contains("StructRef: ->"));
        assert!(flat.contains("Cast: IndexPacket"));
    }

    #[test]
    fn dfs_is_deterministic() {
        let src = "for (i = 0; i < n; i++) { s += a[i]; if (a[i] > m) m = a[i]; }";
        let a = serialize_stmts(&parse_snippet(src).unwrap());
        let b = serialize_stmts(&parse_snippet(src).unwrap());
        assert_eq!(a, b);
    }
}
