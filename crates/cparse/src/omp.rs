//! OpenMP directive parsing and printing.
//!
//! Covers the loop-level directive family the paper restricts its corpus
//! to (`#pragma omp parallel for …`, §3.1.2) plus the clauses the tasks
//! classify: `private`, `reduction`, `schedule`, and the common extras
//! (`firstprivate`, `lastprivate`, `shared`, `nowait`, `collapse`,
//! `num_threads`, `default`).

use std::fmt;

/// A parsed `#pragma omp` directive.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct OmpDirective {
    /// `parallel` present.
    pub parallel: bool,
    /// `for` present.
    pub for_loop: bool,
    /// Clauses in source order.
    pub clauses: Vec<OmpClause>,
}

/// Reduction operators of OpenMP 4.5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ReductionOp {
    Add,
    Sub,
    Mul,
    Max,
    Min,
    BitAnd,
    BitOr,
    BitXor,
    LogAnd,
    LogOr,
}

impl ReductionOp {
    /// Spelling inside `reduction(op: …)`.
    pub fn as_str(self) -> &'static str {
        use ReductionOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Max => "max",
            Min => "min",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            LogAnd => "&&",
            LogOr => "||",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        use ReductionOp::*;
        Some(match s {
            "+" => Add,
            "-" => Sub,
            "*" => Mul,
            "max" => Max,
            "min" => Min,
            "&" => BitAnd,
            "|" => BitOr,
            "^" => BitXor,
            "&&" => LogAnd,
            "||" => LogOr,
            _ => return None,
        })
    }
}

/// `schedule(...)` kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ScheduleKind {
    Static,
    Dynamic,
    Guided,
    Auto,
    Runtime,
}

impl ScheduleKind {
    /// Spelling inside `schedule(...)`.
    pub fn as_str(self) -> &'static str {
        match self {
            ScheduleKind::Static => "static",
            ScheduleKind::Dynamic => "dynamic",
            ScheduleKind::Guided => "guided",
            ScheduleKind::Auto => "auto",
            ScheduleKind::Runtime => "runtime",
        }
    }
}

/// A single OpenMP clause.
#[derive(Clone, Debug, PartialEq)]
pub enum OmpClause {
    /// `private(a, b)`
    Private(Vec<String>),
    /// `firstprivate(a)`
    FirstPrivate(Vec<String>),
    /// `lastprivate(a)`
    LastPrivate(Vec<String>),
    /// `shared(a)`
    Shared(Vec<String>),
    /// `reduction(+: sum)`
    Reduction {
        /// Combiner.
        op: ReductionOp,
        /// Reduced variables.
        vars: Vec<String>,
    },
    /// `schedule(dynamic, 4)`
    Schedule {
        /// Kind.
        kind: ScheduleKind,
        /// Optional chunk size.
        chunk: Option<i64>,
    },
    /// `num_threads(8)`
    NumThreads(i64),
    /// `collapse(2)`
    Collapse(i64),
    /// `nowait`
    NoWait,
    /// `default(none)` / `default(shared)`
    Default(String),
}

/// Directive parse failure.
#[derive(Clone, Debug, PartialEq)]
pub struct OmpParseError {
    /// Description of what went wrong.
    pub msg: String,
}

impl fmt::Display for OmpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpenMP directive parse error: {}", self.msg)
    }
}

impl std::error::Error for OmpParseError {}

impl OmpDirective {
    /// A bare `#pragma omp parallel for`.
    pub fn parallel_for() -> Self {
        OmpDirective { parallel: true, for_loop: true, clauses: Vec::new() }
    }

    /// Appends a clause (builder style).
    pub fn with(mut self, clause: OmpClause) -> Self {
        self.clauses.push(clause);
        self
    }

    /// All privatized variables (`private` clauses only, matching the
    /// paper's RQ2 label definition).
    pub fn private_vars(&self) -> Vec<&str> {
        self.clauses
            .iter()
            .filter_map(|c| match c {
                OmpClause::Private(vs) => Some(vs.iter().map(String::as_str)),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// True when any `private` clause is present.
    pub fn has_private(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c, OmpClause::Private(_)))
    }

    /// True when any `reduction` clause is present.
    pub fn has_reduction(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c, OmpClause::Reduction { .. }))
    }

    /// Schedule kind, defaulting to `static` when unspecified (the OpenMP
    /// default the paper's §1.1 discussion relies on).
    pub fn schedule_kind(&self) -> ScheduleKind {
        self.clauses
            .iter()
            .find_map(|c| match c {
                OmpClause::Schedule { kind, .. } => Some(*kind),
                _ => None,
            })
            .unwrap_or(ScheduleKind::Static)
    }

    /// Parses the text after `#pragma omp`.
    ///
    /// Accepts `parallel for`, `parallel`, `for` and their clause lists.
    pub fn parse(raw: &str) -> Result<OmpDirective, OmpParseError> {
        let mut p = ClauseScanner { src: raw, pos: 0 };
        let mut dir = OmpDirective::default();
        // Directive name words.
        loop {
            p.skip_ws();
            let word = p.peek_word();
            match word.as_str() {
                "parallel" => {
                    dir.parallel = true;
                    p.take_word();
                }
                "for" => {
                    dir.for_loop = true;
                    p.take_word();
                }
                _ => break,
            }
        }
        if !dir.parallel && !dir.for_loop {
            return Err(OmpParseError { msg: format!("unsupported directive: '{}'", raw.trim()) });
        }
        // Clauses.
        loop {
            p.skip_ws();
            if p.at_end() {
                break;
            }
            if p.peek_char() == Some(',') {
                p.bump();
                continue;
            }
            let name = p.take_word();
            if name.is_empty() {
                return Err(OmpParseError { msg: format!("junk in clause list: '{}'", p.rest()) });
            }
            let clause = match name.as_str() {
                "private" => OmpClause::Private(p.paren_var_list()?),
                "firstprivate" => OmpClause::FirstPrivate(p.paren_var_list()?),
                "lastprivate" => OmpClause::LastPrivate(p.paren_var_list()?),
                "shared" => OmpClause::Shared(p.paren_var_list()?),
                "nowait" => OmpClause::NoWait,
                "default" => {
                    let inner = p.paren_raw()?;
                    OmpClause::Default(inner.trim().to_string())
                }
                "num_threads" => {
                    let inner = p.paren_raw()?;
                    let v = inner
                        .trim()
                        .parse::<i64>()
                        .map_err(|_| OmpParseError { msg: format!("bad num_threads '{inner}'") })?;
                    OmpClause::NumThreads(v)
                }
                "collapse" => {
                    let inner = p.paren_raw()?;
                    let v = inner
                        .trim()
                        .parse::<i64>()
                        .map_err(|_| OmpParseError { msg: format!("bad collapse '{inner}'") })?;
                    OmpClause::Collapse(v)
                }
                "schedule" => {
                    let inner = p.paren_raw()?;
                    let mut parts = inner.splitn(2, ',');
                    let kind_s = parts.next().unwrap_or("").trim();
                    let kind = match kind_s {
                        "static" => ScheduleKind::Static,
                        "dynamic" => ScheduleKind::Dynamic,
                        "guided" => ScheduleKind::Guided,
                        "auto" => ScheduleKind::Auto,
                        "runtime" => ScheduleKind::Runtime,
                        other => {
                            return Err(OmpParseError {
                                msg: format!("bad schedule kind '{other}'"),
                            })
                        }
                    };
                    let chunk = match parts.next() {
                        Some(c) => Some(c.trim().parse::<i64>().map_err(|_| OmpParseError {
                            msg: format!("bad schedule chunk '{c}'"),
                        })?),
                        None => None,
                    };
                    OmpClause::Schedule { kind, chunk }
                }
                "reduction" => {
                    let inner = p.paren_raw()?;
                    let mut parts = inner.splitn(2, ':');
                    let op_s = parts.next().unwrap_or("").trim();
                    let op = ReductionOp::parse(op_s).ok_or_else(|| OmpParseError {
                        msg: format!("bad reduction op '{op_s}'"),
                    })?;
                    let vars = parts
                        .next()
                        .unwrap_or("")
                        .split(',')
                        .map(|v| v.trim().to_string())
                        .filter(|v| !v.is_empty())
                        .collect::<Vec<_>>();
                    if vars.is_empty() {
                        return Err(OmpParseError { msg: "reduction with no variables".into() });
                    }
                    OmpClause::Reduction { op, vars }
                }
                other => {
                    return Err(OmpParseError { msg: format!("unknown clause '{other}'") });
                }
            };
            dir.clauses.push(clause);
        }
        Ok(dir)
    }
}

impl fmt::Display for OmpDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#pragma omp")?;
        if self.parallel {
            write!(f, " parallel")?;
        }
        if self.for_loop {
            write!(f, " for")?;
        }
        for c in &self.clauses {
            write!(f, " {c}")?;
        }
        Ok(())
    }
}

impl fmt::Display for OmpClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpClause::Private(vs) => write!(f, "private({})", vs.join(", ")),
            OmpClause::FirstPrivate(vs) => write!(f, "firstprivate({})", vs.join(", ")),
            OmpClause::LastPrivate(vs) => write!(f, "lastprivate({})", vs.join(", ")),
            OmpClause::Shared(vs) => write!(f, "shared({})", vs.join(", ")),
            OmpClause::Reduction { op, vars } => {
                write!(f, "reduction({}: {})", op.as_str(), vars.join(", "))
            }
            OmpClause::Schedule { kind, chunk } => match chunk {
                Some(c) => write!(f, "schedule({}, {c})", kind.as_str()),
                None => write!(f, "schedule({})", kind.as_str()),
            },
            OmpClause::NumThreads(n) => write!(f, "num_threads({n})"),
            OmpClause::Collapse(n) => write!(f, "collapse({n})"),
            OmpClause::NoWait => write!(f, "nowait"),
            OmpClause::Default(s) => write!(f, "default({s})"),
        }
    }
}

struct ClauseScanner<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> ClauseScanner<'a> {
    fn skip_ws(&mut self) {
        while self.peek_char().is_some_and(|c| c.is_whitespace()) {
            self.bump();
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek_char() {
            self.pos += c.len_utf8();
        }
    }

    fn peek_word(&self) -> String {
        self.rest().chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect()
    }

    fn take_word(&mut self) -> String {
        self.skip_ws();
        let w = self.peek_word();
        self.pos += w.len();
        w
    }

    fn paren_raw(&mut self) -> Result<String, OmpParseError> {
        self.skip_ws();
        if self.peek_char() != Some('(') {
            return Err(OmpParseError { msg: format!("expected '(' at '{}'", self.rest()) });
        }
        self.bump();
        let mut depth = 1usize;
        let mut out = String::new();
        while let Some(c) = self.peek_char() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return Ok(out);
                    }
                }
                _ => {}
            }
            out.push(c);
            self.bump();
        }
        Err(OmpParseError { msg: "unbalanced parentheses in clause".into() })
    }

    fn paren_var_list(&mut self) -> Result<Vec<String>, OmpParseError> {
        let inner = self.paren_raw()?;
        let vars: Vec<String> =
            inner.split(',').map(|v| v.trim().to_string()).filter(|v| !v.is_empty()).collect();
        if vars.is_empty() {
            return Err(OmpParseError { msg: "empty variable list".into() });
        }
        Ok(vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_parallel_for() {
        let d = OmpDirective::parse(" parallel for").unwrap();
        assert!(d.parallel && d.for_loop);
        assert!(d.clauses.is_empty());
        assert_eq!(d.to_string(), "#pragma omp parallel for");
    }

    #[test]
    fn private_and_reduction() {
        let d = OmpDirective::parse(" parallel for private(i, j) reduction(+: sum)").unwrap();
        assert_eq!(d.private_vars(), vec!["i", "j"]);
        assert!(d.has_reduction());
        match &d.clauses[1] {
            OmpClause::Reduction { op, vars } => {
                assert_eq!(*op, ReductionOp::Add);
                assert_eq!(vars, &vec!["sum".to_string()]);
            }
            other => panic!("unexpected clause {other:?}"),
        }
    }

    #[test]
    fn schedule_with_chunk() {
        let d = OmpDirective::parse(" parallel for schedule(dynamic,4)").unwrap();
        assert_eq!(d.schedule_kind(), ScheduleKind::Dynamic);
        match &d.clauses[0] {
            OmpClause::Schedule { chunk: Some(4), .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn schedule_defaults_to_static() {
        let d = OmpDirective::parse(" parallel for").unwrap();
        assert_eq!(d.schedule_kind(), ScheduleKind::Static);
    }

    #[test]
    fn all_reduction_ops_roundtrip() {
        for op in ["+", "-", "*", "max", "min", "&", "|", "^", "&&", "||"] {
            let raw = format!(" parallel for reduction({op}: x)");
            let d = OmpDirective::parse(&raw).unwrap();
            let shown = d.to_string();
            assert!(shown.contains(&format!("reduction({op}: x)")), "{shown}");
        }
    }

    #[test]
    fn display_then_reparse_is_identity() {
        let cases = [
            " parallel for private(a) firstprivate(b) lastprivate(c) shared(d) nowait",
            " parallel for reduction(max: m) schedule(guided, 8) collapse(2)",
            " parallel for num_threads(16) default(none)",
        ];
        for raw in cases {
            let d1 = OmpDirective::parse(raw).unwrap();
            let shown = d1.to_string();
            let stripped = shown.strip_prefix("#pragma omp").unwrap();
            let d2 = OmpDirective::parse(stripped).unwrap();
            assert_eq!(d1, d2, "{raw}");
        }
    }

    #[test]
    fn unknown_directive_and_clause_error() {
        assert!(OmpDirective::parse(" task untied").is_err());
        assert!(OmpDirective::parse(" parallel for frobnicate(x)").is_err());
        assert!(OmpDirective::parse(" parallel for reduction(?: x)").is_err());
        assert!(OmpDirective::parse(" parallel for private()").is_err());
    }
}
