//! AST → C source pretty-printer.
//!
//! The corpus generator builds snippets as ASTs and prints them with this
//! module, so printer output is the canonical "Text" representation of
//! every record. Printing is precedence-aware: `print(parse(print(x)))`
//! equals `print(x)` (checked by property tests).

use crate::ast::*;
use std::fmt::Write;

/// Prints a statement list as a C snippet.
pub fn print_stmts(stmts: &[Stmt]) -> String {
    let mut out = String::new();
    for s in stmts {
        print_stmt(&mut out, s, 0);
    }
    out
}

/// Prints a whole translation unit.
pub fn print_translation_unit(tu: &TranslationUnit) -> String {
    let mut out = String::new();
    for (i, item) in tu.items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match item {
            Item::Func(f) => print_func(&mut out, f),
            Item::Decl(decls) => {
                let _ = writeln!(out, "{};", decl_line(decls));
            }
        }
    }
    out
}

/// Prints one expression.
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    expr_prec(&mut s, e, 0);
    s
}

/// Prints a type (specifiers + pointers).
pub fn print_type(t: &Type) -> String {
    let mut s = String::new();
    if t.is_static {
        s.push_str("static ");
    }
    if t.is_register {
        s.push_str("register ");
    }
    if t.is_const {
        s.push_str("const ");
    }
    if t.unsigned {
        s.push_str("unsigned ");
    }
    let base = match &t.base {
        BaseType::Void => "void".to_string(),
        BaseType::Char => "char".to_string(),
        BaseType::Short => "short".to_string(),
        BaseType::Int => "int".to_string(),
        BaseType::Long => "long".to_string(),
        BaseType::LongLong => "long long".to_string(),
        BaseType::Float => "float".to_string(),
        BaseType::Double => "double".to_string(),
        BaseType::Struct(n) => format!("struct {n}"),
        BaseType::Named(n) => n.clone(),
    };
    s.push_str(&base);
    if t.pointers > 0 {
        s.push(' ');
        for _ in 0..t.pointers {
            s.push('*');
        }
    }
    s
}

fn print_func(out: &mut String, f: &FuncDef) {
    let params = f
        .params
        .iter()
        .map(|p| {
            let mut s = format!("{} {}", print_type(&p.ty), p.name);
            for d in &p.array_dims {
                match d {
                    Some(e) => {
                        let _ = write!(s, "[{}]", print_expr(e));
                    }
                    None => s.push_str("[]"),
                }
            }
            s
        })
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "{} {}({}) {{", print_type(&f.ret), f.name, params);
    if let Stmt::Compound(body) = &f.body {
        for s in body {
            print_stmt(out, s, 1);
        }
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn decl_line(decls: &[Decl]) -> String {
    let mut s = print_type(&decls[0].ty);
    // Pointer stars already included in the shared type; per-declarator
    // pointer differences are rare in the subset and share the base here.
    s.push(' ');
    let parts: Vec<String> = decls
        .iter()
        .map(|d| {
            let mut p = d.name.clone();
            for dim in &d.array_dims {
                match dim {
                    Some(e) => {
                        let _ = write!(p, "[{}]", print_expr(e));
                    }
                    None => p.push_str("[]"),
                }
            }
            match &d.init {
                Some(Init::Expr(e)) => {
                    let _ = write!(p, " = {}", print_expr(e));
                }
                Some(Init::List(es)) => {
                    let items = es.iter().map(print_expr).collect::<Vec<_>>().join(", ");
                    let _ = write!(p, " = {{{items}}}");
                }
                None => {}
            }
            p
        })
        .collect();
    // Re-print the type without pointers for multi declarators where each
    // declarator owns its stars: the subset stores pointers on the shared
    // type, so a single spelling is correct here.
    s.push_str(&parts.join(", "));
    s
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Compound(stmts) => {
            indent(out, level);
            out.push_str("{\n");
            for st in stmts {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Decl(decls) => {
            indent(out, level);
            let _ = writeln!(out, "{};", decl_line(decls));
        }
        Stmt::Expr(e) => {
            indent(out, level);
            let _ = writeln!(out, "{};", print_expr(e));
        }
        Stmt::If { cond, then, else_ } => {
            indent(out, level);
            let _ = writeln!(out, "if ({})", print_expr(cond));
            print_stmt(out, then, level + 1);
            if let Some(e) = else_ {
                indent(out, level);
                out.push_str("else\n");
                print_stmt(out, e, level + 1);
            }
        }
        Stmt::For { init, cond, step, body } => {
            indent(out, level);
            let init_s = match init {
                ForInit::Empty => String::new(),
                ForInit::Decl(decls) => decl_line(decls),
                ForInit::Expr(e) => print_expr(e),
            };
            let cond_s = cond.as_ref().map(print_expr).unwrap_or_default();
            let step_s = step.as_ref().map(print_expr).unwrap_or_default();
            let _ = writeln!(out, "for ({init_s}; {cond_s}; {step_s})");
            print_stmt(out, body, level + 1);
        }
        Stmt::While { cond, body } => {
            indent(out, level);
            let _ = writeln!(out, "while ({})", print_expr(cond));
            print_stmt(out, body, level + 1);
        }
        Stmt::DoWhile { body, cond } => {
            indent(out, level);
            out.push_str("do\n");
            print_stmt(out, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "while ({});", print_expr(cond));
        }
        Stmt::Return(e) => {
            indent(out, level);
            match e {
                Some(e) => {
                    let _ = writeln!(out, "return {};", print_expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
        Stmt::Break => {
            indent(out, level);
            out.push_str("break;\n");
        }
        Stmt::Continue => {
            indent(out, level);
            out.push_str("continue;\n");
        }
        Stmt::Pragma { directive, stmt } => {
            indent(out, level);
            let _ = writeln!(out, "{directive}");
            print_stmt(out, stmt, level);
        }
        Stmt::Empty => {
            indent(out, level);
            out.push_str(";\n");
        }
    }
}

fn binop_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Or => 1,
        And => 2,
        BitOr => 3,
        BitXor => 4,
        BitAnd => 5,
        Eq | Ne => 6,
        Lt | Gt | Le | Ge => 7,
        Shl | Shr => 8,
        Add | Sub => 9,
        Mul | Div | Mod => 10,
    }
}

/// Prints `e`, parenthesizing when its precedence is below `min_prec`.
fn expr_prec(out: &mut String, e: &Expr, min_prec: u8) {
    match e {
        Expr::Id(n) => out.push_str(n),
        Expr::IntLit(_, text) => out.push_str(text),
        Expr::FloatLit(_, text) => out.push_str(text),
        Expr::CharLit(c) => {
            let escaped = match c {
                '\n' => "\\n".to_string(),
                '\t' => "\\t".to_string(),
                '\0' => "\\0".to_string(),
                '\'' => "\\'".to_string(),
                '\\' => "\\\\".to_string(),
                other => other.to_string(),
            };
            let _ = write!(out, "'{escaped}'");
        }
        Expr::StrLit(s) => {
            let escaped = s
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
                .replace("\\\\%", "\\%");
            let _ = write!(out, "\"{escaped}\"");
        }
        Expr::Binary { op, l, r } => {
            let prec = binop_prec(*op);
            let need = prec < min_prec;
            if need {
                out.push('(');
            }
            expr_prec(out, l, prec);
            let _ = write!(out, " {} ", op.as_str());
            expr_prec(out, r, prec + 1); // left-associative
            if need {
                out.push(')');
            }
        }
        Expr::Unary { op, expr } => {
            let need = min_prec > 11;
            if need {
                out.push('(');
            }
            match op {
                UnOp::PostInc => {
                    expr_prec(out, expr, 12);
                    out.push_str("++");
                }
                UnOp::PostDec => {
                    expr_prec(out, expr, 12);
                    out.push_str("--");
                }
                UnOp::PreInc => {
                    out.push_str("++");
                    expr_prec(out, expr, 12);
                }
                UnOp::PreDec => {
                    out.push_str("--");
                    expr_prec(out, expr, 12);
                }
                UnOp::Neg => {
                    out.push('-');
                    expr_prec(out, expr, 12);
                }
                UnOp::Not => {
                    out.push('!');
                    expr_prec(out, expr, 12);
                }
                UnOp::BitNot => {
                    out.push('~');
                    expr_prec(out, expr, 12);
                }
                UnOp::Deref => {
                    out.push('*');
                    expr_prec(out, expr, 12);
                }
                UnOp::AddrOf => {
                    out.push('&');
                    expr_prec(out, expr, 12);
                }
            }
            if need {
                out.push(')');
            }
        }
        Expr::Assign { op, lhs, rhs } => {
            // Assignments have the lowest precedence bar comma; always
            // parenthesize when embedded in a tighter context.
            let need = min_prec > 0;
            if need {
                out.push('(');
            }
            expr_prec(out, lhs, 11);
            let _ = write!(out, " {} ", op.as_str());
            expr_prec(out, rhs, 0);
            if need {
                out.push(')');
            }
        }
        Expr::Ternary { cond, then, else_ } => {
            let need = min_prec > 0;
            if need {
                out.push('(');
            }
            expr_prec(out, cond, 1);
            out.push_str(" ? ");
            expr_prec(out, then, 0);
            out.push_str(" : ");
            expr_prec(out, else_, 0);
            if need {
                out.push(')');
            }
        }
        Expr::Call { callee, args } => {
            expr_prec(out, callee, 12);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_prec(out, a, 0);
            }
            out.push(')');
        }
        Expr::Index { base, idx } => {
            expr_prec(out, base, 12);
            out.push('[');
            expr_prec(out, idx, 0);
            out.push(']');
        }
        Expr::Member { base, field, arrow } => {
            expr_prec(out, base, 12);
            out.push_str(if *arrow { "->" } else { "." });
            out.push_str(field);
        }
        Expr::Cast { ty, expr } => {
            let need = min_prec > 11;
            if need {
                out.push('(');
            }
            let _ = write!(out, "({}) ", print_type(ty));
            expr_prec(out, expr, 12);
            if need {
                out.push(')');
            }
        }
        Expr::Sizeof(arg) => match arg.as_ref() {
            SizeofArg::Expr(e) => {
                out.push_str("sizeof ");
                expr_prec(out, e, 12);
            }
            SizeofArg::Type(t) => {
                let _ = write!(out, "sizeof({})", print_type(t));
            }
        },
        Expr::Comma(a, b) => {
            let need = min_prec > 0;
            if need {
                out.push('(');
            }
            expr_prec(out, a, 1);
            out.push_str(", ");
            expr_prec(out, b, 1);
            if need {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_snippet;

    fn roundtrip(src: &str) {
        let s1 = parse_snippet(src).unwrap_or_else(|e| panic!("first parse: {e}\n{src}"));
        let printed = print_stmts(&s1);
        let s2 = parse_snippet(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(
            print_stmts(&s2),
            printed,
            "printer not a fixed point for:\n{src}\n--- printed ---\n{printed}"
        );
    }

    #[test]
    fn roundtrip_basic_loop() {
        roundtrip("for (i = 0; i < n; i++) a[i] = i;");
    }

    #[test]
    fn roundtrip_pragma_loop() {
        roundtrip("#pragma omp parallel for private(j) reduction(+: s)\nfor (i = 0; i < n; i++) s += a[i];");
    }

    #[test]
    fn roundtrip_precedence_edge_cases() {
        roundtrip("x = (a + b) * c;");
        roundtrip("x = a - (b - c);");
        roundtrip("y = -(a + b);");
        roundtrip("z = a / (b * c);");
        roundtrip("w = (a = b) + 1;");
        roundtrip("v = a < (b < c);");
        roundtrip("u = (x ? y : z) + 1;");
    }

    #[test]
    fn roundtrip_calls_members_casts() {
        roundtrip("image->colormap[i].opacity = (IndexPacket) i;");
        roundtrip("fprintf(stderr, \"%0.2lf \", x[i]);");
        roundtrip("n = sizeof(double) * k;");
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip("if (a > b) { m = a; } else { m = b; }");
        roundtrip("while (p) p = next(p);");
        roundtrip("do { x++; } while (x < 10);");
        roundtrip("for (int i = 0, j = 9; i < j; i++, j--) swap(v, i, j);");
    }

    #[test]
    fn parenthesization_changes_meaning_is_preserved() {
        let with = parse_snippet("x = (a + b) * c;").unwrap();
        let without = parse_snippet("x = a + b * c;").unwrap();
        assert_ne!(print_stmts(&with), print_stmts(&without));
    }

    #[test]
    fn types_print_fully() {
        let t = Type {
            base: BaseType::Double,
            pointers: 2,
            unsigned: false,
            is_const: true,
            is_static: true,
            is_register: false,
        };
        assert_eq!(print_type(&t), "static const double **");
    }

    #[test]
    fn translation_unit_roundtrip() {
        let src = "double dot(double *a, double *b, int n) {\nint i;\ndouble s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];\nreturn s;\n}";
        let tu = crate::parser::parse_translation_unit(src).unwrap();
        let printed = print_translation_unit(&tu);
        let tu2 = crate::parser::parse_translation_unit(&printed).unwrap();
        assert_eq!(print_translation_unit(&tu2), printed);
    }
}
