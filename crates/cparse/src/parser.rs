//! Recursive-descent parser for the C subset.
//!
//! C cannot be parsed without a typedef table; like pycparser with its
//! fake-libc headers, we keep a list of well-known typedef names
//! ([`WELL_KNOWN_TYPEDEFS`]) and additionally treat `Ident Ident …` at
//! statement level as a declaration. That resolves the declaration/
//! expression ambiguity for all code the corpus generator and the paper's
//! examples produce (`ssize_t i`, `IndexPacket p`, `size_t n = 0`, …).

use crate::ast::*;
use crate::lexer::{lex, Keyword, Punct, SpannedToken, Token};
use crate::omp::OmpDirective;
use std::fmt;

/// Typedef names accepted as type specifiers without a declaration in
/// scope (mirrors pycparser's fake libc headers).
pub const WELL_KNOWN_TYPEDEFS: &[&str] = &[
    "size_t",
    "ssize_t",
    "ptrdiff_t",
    "FILE",
    "int8_t",
    "int16_t",
    "int32_t",
    "int64_t",
    "uint8_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
    "bool",
    "IndexPacket",
    "PixelPacket",
    "MagickBooleanType",
    "intptr_t",
    "uintptr_t",
];

/// Parse failure with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// 1-based line (0 when at end of input).
    pub line: usize,
    /// 1-based column (0 when at end of input).
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError { msg: e.msg, line: e.line, col: e.col }
    }
}

/// Parses a full file: function definitions and global declarations.
pub fn parse_translation_unit(src: &str) -> Result<TranslationUnit, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(TranslationUnit { items })
}

/// Parses a statement list — the shape of an Open-OMP record (a loop nest
/// possibly preceded by declarations and a pragma).
pub fn parse_snippet(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

struct Parser {
    toks: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn new(toks: Vec<SpannedToken>) -> Self {
        Self { toks, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.toks.get(self.pos + offset).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        match self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))) {
            Some(t) => ParseError { msg: msg.into(), line: t.line, col: t.col },
            None => ParseError { msg: msg.into(), line: 0, col: 0 },
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == Some(&Token::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}', found {}", p.as_str(), self.describe_here())))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == Some(&Token::Keyword(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(t) => format!("'{t}'"),
            None => "end of input".to_string(),
        }
    }

    // ---- types -----------------------------------------------------------

    /// True when the token at `offset` could start a type specifier.
    fn is_type_start_at(&self, offset: usize) -> bool {
        match self.peek_at(offset) {
            Some(Token::Keyword(k)) => matches!(
                k,
                Keyword::Void
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Signed
                    | Keyword::Unsigned
                    | Keyword::Const
                    | Keyword::Static
                    | Keyword::Register
                    | Keyword::Volatile
                    | Keyword::Extern
                    | Keyword::Struct
                    | Keyword::Inline
            ),
            Some(Token::Ident(name)) => WELL_KNOWN_TYPEDEFS.contains(&name.as_str()),
            _ => false,
        }
    }

    fn is_type_start(&self) -> bool {
        // `Ident Ident` (e.g. `MyType x`) also opens a declaration.
        if self.is_type_start_at(0) {
            return true;
        }
        matches!((self.peek(), self.peek_at(1)), (Some(Token::Ident(_)), Some(Token::Ident(_))))
    }

    /// Parses declaration specifiers (storage classes, qualifiers, base).
    fn type_specifiers(&mut self) -> Result<Type, ParseError> {
        let mut ty = Type::default();
        let mut base: Option<BaseType> = None;
        let mut longs = 0usize;
        let mut saw_any = false;
        loop {
            match self.peek() {
                Some(Token::Keyword(k)) => {
                    let k = *k;
                    match k {
                        Keyword::Const => ty.is_const = true,
                        Keyword::Static => ty.is_static = true,
                        Keyword::Register => ty.is_register = true,
                        Keyword::Volatile
                        | Keyword::Extern
                        | Keyword::Inline
                        | Keyword::Restrict => {}
                        Keyword::Unsigned => ty.unsigned = true,
                        Keyword::Signed => {}
                        Keyword::Void => base = Some(BaseType::Void),
                        Keyword::Char => base = Some(BaseType::Char),
                        Keyword::Short => base = Some(BaseType::Short),
                        Keyword::Int => {
                            if base.is_none() {
                                base = Some(BaseType::Int);
                            }
                        }
                        Keyword::Long => longs += 1,
                        Keyword::Float => base = Some(BaseType::Float),
                        Keyword::Double => base = Some(BaseType::Double),
                        Keyword::Struct | Keyword::Union | Keyword::Enum => {
                            self.bump();
                            let name = match self.bump() {
                                Some(Token::Ident(n)) => n,
                                other => {
                                    return Err(self.err(format!(
                                        "expected struct/union/enum tag, found {other:?}"
                                    )))
                                }
                            };
                            base = Some(BaseType::Struct(name));
                            saw_any = true;
                            continue;
                        }
                        _ => break,
                    }
                    saw_any = true;
                    self.bump();
                }
                Some(Token::Ident(name))
                    if base.is_none()
                        && longs == 0
                        && (WELL_KNOWN_TYPEDEFS.contains(&name.as_str())
                            || matches!(self.peek_at(1), Some(Token::Ident(_)))) =>
                {
                    base = Some(BaseType::Named(name.clone()));
                    saw_any = true;
                    self.bump();
                    break; // a typedef name terminates the specifier list
                }
                _ => break,
            }
        }
        if !saw_any {
            return Err(self.err("expected type specifier"));
        }
        ty.base = match (base, longs) {
            (Some(BaseType::Double), _) => BaseType::Double, // long double → double
            (b, 0) => b.unwrap_or(BaseType::Int),
            (None, 1) | (Some(BaseType::Int), 1) => BaseType::Long,
            (None, _) | (Some(BaseType::Int), _) => BaseType::LongLong,
            (Some(b), _) => b,
        };
        Ok(ty)
    }

    /// Parses `*`s + name + array dims for one declarator.
    fn declarator(&mut self, base: &Type) -> Result<Decl, ParseError> {
        let mut ty = base.clone();
        while self.eat_punct(Punct::Star) {
            ty.pointers += 1;
            // `const` may follow the star.
            while self.eat_keyword(Keyword::Const) || self.eat_keyword(Keyword::Restrict) {}
        }
        let name = match self.bump() {
            Some(Token::Ident(n)) => n,
            other => return Err(self.err(format!("expected declarator name, found {other:?}"))),
        };
        let mut array_dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            if self.eat_punct(Punct::RBracket) {
                array_dims.push(None);
            } else {
                let dim = self.expression()?;
                self.expect_punct(Punct::RBracket)?;
                array_dims.push(Some(dim));
            }
        }
        let init = if self.eat_punct(Punct::Eq) {
            if self.eat_punct(Punct::LBrace) {
                let mut items = Vec::new();
                while !self.eat_punct(Punct::RBrace) {
                    items.push(self.assignment_expr()?);
                    if !self.eat_punct(Punct::Comma)
                        && self.peek() != Some(&Token::Punct(Punct::RBrace))
                    {
                        return Err(self.err("expected ',' or '}' in initializer list"));
                    }
                }
                Some(Init::List(items))
            } else {
                Some(Init::Expr(self.assignment_expr()?))
            }
        } else {
            None
        };
        Ok(Decl { name, ty, array_dims, init })
    }

    /// Parses a whole declaration line `type d1, d2, …;` (semicolon eaten).
    fn declaration(&mut self) -> Result<Vec<Decl>, ParseError> {
        let base = self.type_specifiers()?;
        let mut decls = vec![self.declarator(&base)?];
        while self.eat_punct(Punct::Comma) {
            decls.push(self.declarator(&base)?);
        }
        self.expect_punct(Punct::Semicolon)?;
        Ok(decls)
    }

    // ---- top level --------------------------------------------------------

    fn item(&mut self) -> Result<Item, ParseError> {
        let checkpoint = self.pos;
        let base = self.type_specifiers()?;
        // Look ahead: pointer stars, name, then '(' means function.
        let mut probe = self.pos;
        while self.toks.get(probe).map(|t| &t.tok) == Some(&Token::Punct(Punct::Star)) {
            probe += 1;
        }
        let is_func = matches!(self.toks.get(probe).map(|t| &t.tok), Some(Token::Ident(_)))
            && self.toks.get(probe + 1).map(|t| &t.tok) == Some(&Token::Punct(Punct::LParen));
        if is_func {
            let mut ret = base;
            while self.eat_punct(Punct::Star) {
                ret.pointers += 1;
            }
            let name = match self.bump() {
                Some(Token::Ident(n)) => n,
                _ => unreachable!("probed an identifier"),
            };
            self.expect_punct(Punct::LParen)?;
            let mut params = Vec::new();
            if !self.eat_punct(Punct::RParen) {
                loop {
                    if self.peek() == Some(&Token::Keyword(Keyword::Void))
                        && self.peek_at(1) == Some(&Token::Punct(Punct::RParen))
                    {
                        self.bump();
                        self.expect_punct(Punct::RParen)?;
                        break;
                    }
                    let pbase = self.type_specifiers()?;
                    let mut pty = pbase.clone();
                    while self.eat_punct(Punct::Star) {
                        pty.pointers += 1;
                        while self.eat_keyword(Keyword::Const)
                            || self.eat_keyword(Keyword::Restrict)
                        {}
                    }
                    let pname = match self.peek() {
                        Some(Token::Ident(_)) => match self.bump() {
                            Some(Token::Ident(n)) => n,
                            _ => unreachable!(),
                        },
                        _ => String::new(),
                    };
                    let mut dims = Vec::new();
                    while self.eat_punct(Punct::LBracket) {
                        if self.eat_punct(Punct::RBracket) {
                            dims.push(None);
                        } else {
                            let d = self.expression()?;
                            self.expect_punct(Punct::RBracket)?;
                            dims.push(Some(d));
                        }
                    }
                    params.push(ParamDecl { name: pname, ty: pty, array_dims: dims });
                    if self.eat_punct(Punct::RParen) {
                        break;
                    }
                    self.expect_punct(Punct::Comma)?;
                }
            }
            if self.eat_punct(Punct::Semicolon) {
                // Prototype: surface as a declaration of the name.
                return Ok(Item::Decl(vec![Decl {
                    name,
                    ty: ret,
                    array_dims: Vec::new(),
                    init: None,
                }]));
            }
            let body = self.compound()?;
            return Ok(Item::Func(FuncDef { ret, name, params, body }));
        }
        // Not a function: rewind and parse a declaration line.
        self.pos = checkpoint;
        let decls = self.declaration()?;
        Ok(Item::Decl(decls))
    }

    // ---- statements -------------------------------------------------------

    fn compound(&mut self) -> Result<Stmt, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_end() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        Ok(Stmt::Compound(stmts))
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::OmpPragma(_)) => {
                let raw = match self.bump() {
                    Some(Token::OmpPragma(r)) => r,
                    _ => unreachable!(),
                };
                let directive =
                    OmpDirective::parse(&raw).map_err(|e| self.err(format!("in pragma: {e}")))?;
                let stmt = self.statement()?;
                Ok(Stmt::Pragma { directive, stmt: Box::new(stmt) })
            }
            Some(Token::Punct(Punct::LBrace)) => self.compound(),
            Some(Token::Punct(Punct::Semicolon)) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Some(Token::Keyword(Keyword::If)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.statement()?);
                let else_ = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, else_ })
            }
            Some(Token::Keyword(Keyword::For)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semicolon) {
                    ForInit::Empty
                } else if self.is_type_start() {
                    let base = self.type_specifiers()?;
                    let mut decls = vec![self.declarator(&base)?];
                    while self.eat_punct(Punct::Comma) {
                        decls.push(self.declarator(&base)?);
                    }
                    self.expect_punct(Punct::Semicolon)?;
                    ForInit::Decl(decls)
                } else {
                    let e = self.expression()?;
                    self.expect_punct(Punct::Semicolon)?;
                    ForInit::Expr(e)
                };
                let cond = if self.peek() == Some(&Token::Punct(Punct::Semicolon)) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::Semicolon)?;
                let step = if self.peek() == Some(&Token::Punct(Punct::RParen)) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt::For { init, cond, step, body })
            }
            Some(Token::Keyword(Keyword::While)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt::While { cond, body })
            }
            Some(Token::Keyword(Keyword::Do)) => {
                self.bump();
                let body = Box::new(self.statement()?);
                if !self.eat_keyword(Keyword::While) {
                    return Err(self.err("expected 'while' after do-body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Some(Token::Keyword(Keyword::Return)) => {
                self.bump();
                if self.eat_punct(Punct::Semicolon) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expression()?;
                    self.expect_punct(Punct::Semicolon)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Some(Token::Keyword(Keyword::Break)) => {
                self.bump();
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::Break)
            }
            Some(Token::Keyword(Keyword::Continue)) => {
                self.bump();
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::Continue)
            }
            Some(Token::Keyword(Keyword::Goto)) | Some(Token::Keyword(Keyword::Switch)) => {
                Err(self.err("goto/switch are outside the supported C subset"))
            }
            _ if self.is_type_start() => Ok(Stmt::Decl(self.declaration()?)),
            Some(_) => {
                let e = self.expression()?;
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::Expr(e))
            }
            None => Err(self.err("expected statement, found end of input")),
        }
    }

    // ---- expressions ------------------------------------------------------

    fn expression(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.assignment_expr()?;
        while self.eat_punct(Punct::Comma) {
            let r = self.assignment_expr()?;
            e = Expr::Comma(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn assignment_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            Some(Token::Punct(Punct::Eq)) => AssignOp::Assign,
            Some(Token::Punct(Punct::PlusEq)) => AssignOp::Add,
            Some(Token::Punct(Punct::MinusEq)) => AssignOp::Sub,
            Some(Token::Punct(Punct::StarEq)) => AssignOp::Mul,
            Some(Token::Punct(Punct::SlashEq)) => AssignOp::Div,
            Some(Token::Punct(Punct::PercentEq)) => AssignOp::Mod,
            Some(Token::Punct(Punct::ShlEq)) => AssignOp::Shl,
            Some(Token::Punct(Punct::ShrEq)) => AssignOp::Shr,
            Some(Token::Punct(Punct::AmpEq)) => AssignOp::BitAnd,
            Some(Token::Punct(Punct::PipeEq)) => AssignOp::BitOr,
            Some(Token::Punct(Punct::CaretEq)) => AssignOp::BitXor,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment_expr()?; // right-associative
        Ok(Expr::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn ternary_expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.assignment_expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_ = self.assignment_expr()?;
            Ok(Expr::Ternary { cond: Box::new(cond), then: Box::new(then), else_: Box::new(else_) })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing binary expression parser.
    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(Token::Punct(Punct::PipePipe)) => (BinOp::Or, 1),
                Some(Token::Punct(Punct::AmpAmp)) => (BinOp::And, 2),
                Some(Token::Punct(Punct::Pipe)) => (BinOp::BitOr, 3),
                Some(Token::Punct(Punct::Caret)) => (BinOp::BitXor, 4),
                Some(Token::Punct(Punct::Amp)) => (BinOp::BitAnd, 5),
                Some(Token::Punct(Punct::EqEq)) => (BinOp::Eq, 6),
                Some(Token::Punct(Punct::NotEq)) => (BinOp::Ne, 6),
                Some(Token::Punct(Punct::Lt)) => (BinOp::Lt, 7),
                Some(Token::Punct(Punct::Gt)) => (BinOp::Gt, 7),
                Some(Token::Punct(Punct::Le)) => (BinOp::Le, 7),
                Some(Token::Punct(Punct::Ge)) => (BinOp::Ge, 7),
                Some(Token::Punct(Punct::Shl)) => (BinOp::Shl, 8),
                Some(Token::Punct(Punct::Shr)) => (BinOp::Shr, 8),
                Some(Token::Punct(Punct::Plus)) => (BinOp::Add, 9),
                Some(Token::Punct(Punct::Minus)) => (BinOp::Sub, 9),
                Some(Token::Punct(Punct::Star)) => (BinOp::Mul, 10),
                Some(Token::Punct(Punct::Slash)) => (BinOp::Div, 10),
                Some(Token::Punct(Punct::Percent)) => (BinOp::Mod, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary { op, l: Box::new(lhs), r: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Punct(Punct::Minus)) => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(self.unary_expr()?) })
            }
            Some(Token::Punct(Punct::Not)) => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(self.unary_expr()?) })
            }
            Some(Token::Punct(Punct::Tilde)) => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::BitNot, expr: Box::new(self.unary_expr()?) })
            }
            Some(Token::Punct(Punct::PlusPlus)) => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::PreInc, expr: Box::new(self.unary_expr()?) })
            }
            Some(Token::Punct(Punct::MinusMinus)) => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::PreDec, expr: Box::new(self.unary_expr()?) })
            }
            Some(Token::Punct(Punct::Star)) => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Deref, expr: Box::new(self.unary_expr()?) })
            }
            Some(Token::Punct(Punct::Amp)) => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::AddrOf, expr: Box::new(self.unary_expr()?) })
            }
            Some(Token::Punct(Punct::Plus)) => {
                self.bump();
                self.unary_expr()
            }
            Some(Token::Keyword(Keyword::Sizeof)) => {
                self.bump();
                if self.peek() == Some(&Token::Punct(Punct::LParen)) && self.is_type_start_at(1) {
                    self.expect_punct(Punct::LParen)?;
                    let mut ty = self.type_specifiers()?;
                    while self.eat_punct(Punct::Star) {
                        ty.pointers += 1;
                    }
                    self.expect_punct(Punct::RParen)?;
                    Ok(Expr::Sizeof(Box::new(SizeofArg::Type(ty))))
                } else {
                    let e = self.unary_expr()?;
                    Ok(Expr::Sizeof(Box::new(SizeofArg::Expr(e))))
                }
            }
            // Cast: '(' type ')' unary
            Some(Token::Punct(Punct::LParen)) if self.is_type_start_at(1) => {
                self.bump();
                let mut ty = self.type_specifiers()?;
                while self.eat_punct(Punct::Star) {
                    ty.pointers += 1;
                }
                self.expect_punct(Punct::RParen)?;
                let e = self.unary_expr()?;
                Ok(Expr::Cast { ty, expr: Box::new(e) })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Some(Token::Punct(Punct::LBracket)) => {
                    self.bump();
                    let idx = self.expression()?;
                    self.expect_punct(Punct::RBracket)?;
                    e = Expr::Index { base: Box::new(e), idx: Box::new(idx) };
                }
                Some(Token::Punct(Punct::LParen)) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.assignment_expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    e = Expr::Call { callee: Box::new(e), args };
                }
                Some(Token::Punct(Punct::Dot)) => {
                    self.bump();
                    let field = match self.bump() {
                        Some(Token::Ident(n)) => n,
                        other => return Err(self.err(format!("expected field, found {other:?}"))),
                    };
                    e = Expr::Member { base: Box::new(e), field, arrow: false };
                }
                Some(Token::Punct(Punct::Arrow)) => {
                    self.bump();
                    let field = match self.bump() {
                        Some(Token::Ident(n)) => n,
                        other => return Err(self.err(format!("expected field, found {other:?}"))),
                    };
                    e = Expr::Member { base: Box::new(e), field, arrow: true };
                }
                Some(Token::Punct(Punct::PlusPlus)) => {
                    self.bump();
                    e = Expr::Unary { op: UnOp::PostInc, expr: Box::new(e) };
                }
                Some(Token::Punct(Punct::MinusMinus)) => {
                    self.bump();
                    e = Expr::Unary { op: UnOp::PostDec, expr: Box::new(e) };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Ident(n)) => Ok(Expr::Id(n)),
            Some(Token::IntLit(v, text)) => Ok(Expr::IntLit(v, text)),
            Some(Token::FloatLit(v, text)) => Ok(Expr::FloatLit(v, text)),
            Some(Token::CharLit(c)) => Ok(Expr::CharLit(c)),
            Some(Token::StrLit(s)) => Ok(Expr::StrLit(s)),
            Some(Token::Punct(Punct::LParen)) => {
                let e = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snippet(src: &str) -> Vec<Stmt> {
        parse_snippet(src).unwrap_or_else(|e| panic!("{e} in {src}"))
    }

    #[test]
    fn canonical_for_loop() {
        let s = snippet("for (i = 0; i < n; i++) a[i] = i;");
        match &s[0] {
            Stmt::For { init: ForInit::Expr(_), cond: Some(_), step: Some(_), body } => {
                match body.as_ref() {
                    Stmt::Expr(Expr::Assign { .. }) => {}
                    other => panic!("body: {other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_with_declaration_init() {
        let s = snippet("for (int i = 0; i < 10; ++i) sum += i;");
        match &s[0] {
            Stmt::For { init: ForInit::Decl(decls), .. } => {
                assert_eq!(decls[0].name, "i");
                assert!(decls[0].ty.is_integer());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pragma_attaches_to_loop() {
        let s = snippet("#pragma omp parallel for private(j)\nfor (i = 0; i < n; i++) x[i] = 0;");
        match &s[0] {
            Stmt::Pragma { directive, stmt } => {
                assert!(directive.parallel && directive.for_loop);
                assert_eq!(directive.private_vars(), vec!["j"]);
                assert!(matches!(stmt.as_ref(), Stmt::For { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let s = snippet("x = a + b * c;");
        match &s[0] {
            Stmt::Expr(Expr::Assign { rhs, .. }) => match rhs.as_ref() {
                Expr::Binary { op: BinOp::Add, r, .. } => {
                    assert!(matches!(r.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relational_binds_tighter_than_logical() {
        let s = snippet("if (a < b && c > d) x = 1;");
        match &s[0] {
            Stmt::If { cond: Expr::Binary { op: BinOp::And, l, r }, .. } => {
                assert!(matches!(l.as_ref(), Expr::Binary { op: BinOp::Lt, .. }));
                assert!(matches!(r.as_ref(), Expr::Binary { op: BinOp::Gt, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_loops_and_arrays() {
        let s = snippet(
            "for (i = 0; i < n; i++)\n  for (j = 0; j < m; j++)\n    c[i][j] = a[i][j] + b[i][j];",
        );
        let mut for_count = 0;
        s[0].walk(&mut |st| {
            if matches!(st, Stmt::For { .. }) {
                for_count += 1;
            }
        });
        assert_eq!(for_count, 2);
    }

    #[test]
    fn cast_and_member_access() {
        let s = snippet("image->colormap[i].opacity = (IndexPacket) i;");
        match &s[0] {
            Stmt::Expr(Expr::Assign { lhs, rhs, .. }) => {
                assert!(matches!(lhs.as_ref(), Expr::Member { arrow: false, .. }));
                match rhs.as_ref() {
                    Expr::Cast { ty, .. } => {
                        assert_eq!(ty.base, BaseType::Named("IndexPacket".into()));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ssize_t_cast_from_the_paper() {
        // Table 12, example 3.
        let s = snippet(
            "for (i = 0; i < ((ssize_t) image->colors); i++)\n  image->colormap[i].opacity = (IndexPacket) i;",
        );
        assert!(matches!(&s[0], Stmt::For { .. }));
    }

    #[test]
    fn io_loop_from_the_paper() {
        // Table 12, example 2.
        let s = snippet(
            "for (i = 0; i < n; i++) {\n  fprintf(stderr, \"%0.2lf \", x[i]);\n  if ((i % 20) == 0)\n    fprintf(stderr, \" \\n\");\n}",
        );
        let mut calls = 0;
        s[0].walk_exprs(&mut |e| {
            if let Expr::Call { callee, .. } = e {
                if matches!(callee.as_ref(), Expr::Id(n) if n == "fprintf") {
                    calls += 1;
                }
            }
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn function_definition() {
        let tu = parse_translation_unit(
            "double dot(double *a, double *b, int n) {\n  int i; double s = 0.0;\n  for (i = 0; i < n; i++) s += a[i] * b[i];\n  return s;\n}",
        )
        .unwrap();
        match &tu.items[0] {
            Item::Func(f) => {
                assert_eq!(f.name, "dot");
                assert_eq!(f.params.len(), 3);
                assert_eq!(f.params[0].ty.pointers, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn declaration_forms() {
        let s = snippet(
            "unsigned long long x = 1; static const double eps = 1e-9; int a[10][20], *p, q = 3;",
        );
        match &s[0] {
            Stmt::Decl(d) => {
                assert_eq!(d[0].ty.base, BaseType::LongLong);
                assert!(d[0].ty.unsigned);
            }
            other => panic!("{other:?}"),
        }
        match &s[2] {
            Stmt::Decl(d) => {
                assert_eq!(d.len(), 3);
                assert_eq!(d[0].array_dims.len(), 2);
                assert_eq!(d[1].ty.pointers, 1);
                assert!(matches!(d[2].init, Some(Init::Expr(_))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn register_keyword_parses_in_lenient_frontend() {
        // The *strict* ComPar front-end (baselines crate) rejects this; the
        // main parser accepts it like pycparser does.
        let s = snippet("register int i; for (i = 0; i < n; i++) a[i] = 0;");
        match &s[0] {
            Stmt::Decl(d) => assert!(d[0].ty.is_register),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn do_while_and_while() {
        let s = snippet("do { x++; } while (x < 10); while (p) p = next(p);");
        assert!(matches!(&s[0], Stmt::DoWhile { .. }));
        assert!(matches!(&s[1], Stmt::While { .. }));
    }

    #[test]
    fn ternary_and_comma() {
        let s = snippet("m = a > b ? a : b; for (i = 0, j = n; i < j; i++, j--) t[i] = t[j];");
        assert!(matches!(&s[0], Stmt::Expr(Expr::Assign { .. })));
        match &s[1] {
            Stmt::For {
                init: ForInit::Expr(Expr::Comma(..)), step: Some(Expr::Comma(..)), ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sizeof_forms() {
        let s = snippet("n = sizeof(double) * len; m = sizeof x;");
        match &s[0] {
            Stmt::Expr(Expr::Assign { rhs, .. }) => match rhs.as_ref() {
                Expr::Binary { l, .. } => {
                    assert!(matches!(l.as_ref(), Expr::Sizeof(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_snippet("for (i = 0; i < n; i++ a[i] = i;").unwrap_err();
        assert!(err.line >= 1);
        assert!(err.msg.contains("expected"));
    }

    #[test]
    fn goto_is_rejected() {
        assert!(parse_snippet("goto done;").is_err());
    }

    #[test]
    fn unknown_pragma_clause_is_an_error() {
        assert!(parse_snippet("#pragma omp parallel for bogus(x)\nfor(;;) ;").is_err());
    }
}
