//! # pragformer-cparse
//!
//! A self-contained C front-end playing the role pycparser plays in the
//! PragFormer paper: turning C source into an AST, extracting `#pragma omp`
//! directives, and serializing the AST in the DFS order the paper feeds to
//! its models (Tables 2 and 6).
//!
//! The grammar covers the C subset that loop-level parallelization actually
//! touches — declarations, expressions with full operator precedence,
//! control flow, function definitions and calls, arrays, pointers, struct
//! member access and casts. Preprocessor lines other than `#pragma omp`
//! are skipped, exactly like the paper's pipeline which works on post-crawl
//! raw files.
//!
//! Entry points:
//!
//! * [`lex`] — token stream with source positions;
//! * [`parse_translation_unit`] — whole files (functions + globals);
//! * [`parse_snippet`] — statement lists, the shape of Open-OMP records;
//! * [`omp::OmpDirective::parse`] — OpenMP pragma lines;
//! * [`dfs::serialize_stmts`] — pycparser-style DFS token stream;
//! * [`printer`] — AST → C source (used by the corpus generator, so the
//!   "Text" representation in this reproduction *is* printer output).
//!
//! ## Example
//!
//! ```
//! use pragformer_cparse::{parse_snippet, dfs};
//! let code = "for (i = 0; i < n; i++) a[i] = i;";
//! let stmts = parse_snippet(code).unwrap();
//! let tokens = dfs::serialize_stmts(&stmts);
//! assert_eq!(tokens[0], "For:");
//! assert!(tokens.contains(&"ArrayRef:".to_string()));
//! ```

pub mod ast;
pub mod dfs;
pub mod lexer;
pub mod omp;
pub mod parser;
pub mod printer;

pub use ast::*;
pub use lexer::{lex, LexError, SpannedToken, Token};
pub use parser::{parse_snippet, parse_translation_unit, ParseError};

/// Result of parsing: either value or positioned error.
pub type ParseResult<T> = Result<T, ParseError>;
