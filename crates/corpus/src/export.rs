//! On-disk export in the Open-OMP record layout.
//!
//! The paper's database ships every record as three files (§3.1.2):
//! `code.c` (the loop segment), `pragma.c` (the directive, when present)
//! and a serialized AST. This module writes and reads that layout so the
//! generated corpus can be released/consumed exactly like the original
//! `Open_OMP.tar.gz` — one directory per record:
//!
//! ```text
//! <root>/
//!   manifest.tsv              id, label, domain, template per record
//!   00000017/
//!     code.c
//!     pragma.c                (positive records only)
//!     ast.txt                 DFS serialization, one label per line
//! ```

use crate::database::Database;
use crate::domain::Domain;
use crate::record::Record;
use pragformer_cparse::{dfs, parse_snippet};
use std::io::{self, Write};
use std::path::Path;

/// Writes the whole database under `root`. Returns the record count.
pub fn export(db: &Database, root: &Path) -> io::Result<usize> {
    std::fs::create_dir_all(root)?;
    let mut manifest = io::BufWriter::new(std::fs::File::create(root.join("manifest.tsv"))?);
    writeln!(manifest, "id\thas_directive\thas_private\thas_reduction\tdomain\ttemplate")?;
    for r in db.records() {
        let dir = root.join(format!("{:08}", r.id));
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join("code.c"), r.code())?;
        if let Some(d) = &r.directive {
            std::fs::write(dir.join("pragma.c"), format!("{d}\n"))?;
        }
        let ast = dfs::serialize_stmts(&r.stmts).join("\n");
        std::fs::write(dir.join("ast.txt"), ast)?;
        writeln!(
            manifest,
            "{}\t{}\t{}\t{}\t{}\t{}",
            r.id,
            r.has_directive(),
            r.has_private(),
            r.has_reduction(),
            r.domain.name(),
            r.template
        )?;
    }
    manifest.flush()?;
    Ok(db.len())
}

/// Reads an exported layout back into records.
///
/// Only the pieces the pipeline consumes are restored: code (re-parsed),
/// directive, and the manifest labels. Helper functions are not part of
/// the on-disk layout (matching the original database, which inlines them
/// into `code.c` when present).
pub fn import(root: &Path) -> io::Result<Vec<Record>> {
    let manifest = std::fs::read_to_string(root.join("manifest.tsv"))?;
    let mut records = Vec::new();
    for line in manifest.lines().skip(1) {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 6 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("short manifest line: {line}"),
            ));
        }
        let id: usize = cols[0]
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad id: {e}")))?;
        let dir = root.join(format!("{id:08}"));
        let code = std::fs::read_to_string(dir.join("code.c"))?;
        let stmts = parse_snippet(&code)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("record {id}: {e}")))?;
        let pragma_path = dir.join("pragma.c");
        let directive = if pragma_path.exists() {
            let text = std::fs::read_to_string(&pragma_path)?;
            let stripped = text.trim().strip_prefix("#pragma omp").ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("record {id}: bad pragma"))
            })?;
            Some(pragformer_cparse::omp::OmpDirective::parse(stripped).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("record {id}: {e}"))
            })?)
        } else {
            None
        };
        let domain = match cols[4] {
            "Benchmark" => Domain::Benchmark,
            "Testing" => Domain::Testing,
            "Generic Application" => Domain::GenericApplication,
            _ => Domain::Unknown,
        };
        records.push(Record {
            id,
            stmts,
            helpers: Vec::new(),
            directive,
            domain,
            // Leaked once per distinct template name; the template set is
            // a small closed vocabulary so this is bounded.
            template: Box::leak(cols[5].to_string().into_boxed_str()),
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("openomp_export_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_import_roundtrip() {
        let db = generate(&GeneratorConfig { target_records: 40, seed: 7, ..Default::default() });
        let dir = tmpdir("roundtrip");
        let n = export(&db, &dir).unwrap();
        assert_eq!(n, db.len());
        let back = import(&dir).unwrap();
        assert_eq!(back.len(), db.len());
        for (orig, re) in db.records().iter().zip(&back) {
            assert_eq!(orig.id, re.id);
            assert_eq!(orig.has_directive(), re.has_directive());
            assert_eq!(orig.has_private(), re.has_private());
            assert_eq!(orig.has_reduction(), re.has_reduction());
            assert_eq!(orig.domain, re.domain);
            // The code round-trips through print→parse→print.
            assert_eq!(orig.code(), re.code());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn layout_matches_paper_structure() {
        let db = generate(&GeneratorConfig { target_records: 10, seed: 8, ..Default::default() });
        let dir = tmpdir("layout");
        export(&db, &dir).unwrap();
        assert!(dir.join("manifest.tsv").exists());
        let r = &db.records()[0];
        let rdir = dir.join(format!("{:08}", r.id));
        assert!(rdir.join("code.c").exists());
        assert!(rdir.join("ast.txt").exists());
        assert_eq!(rdir.join("pragma.c").exists(), r.has_directive());
        // The AST dump is the DFS serialization, one label per line.
        let ast = std::fs::read_to_string(rdir.join("ast.txt")).unwrap();
        assert!(ast.lines().count() >= 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_rejects_corrupt_manifest() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.tsv"), "id\tjunk\n1\tonly-two\n").unwrap();
        assert!(import(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
