//! # pragformer-corpus
//!
//! A synthetic stand-in for the paper's **Open-OMP** database: 17k C
//! snippets crawled from GitHub, half annotated with
//! `#pragma omp parallel for` directives, half negative examples drawn
//! from the same files. The crawl is not reproducible offline, so this
//! crate *generates* the corpus from ~40 parameterized loop templates that
//! cover the same phenomenology (see DESIGN.md §2.1):
//!
//! * positive templates: initialization, axpy/triad, GEMV/GEMM, stencils,
//!   element-wise math, reductions (`+`, `*`, `max`, `min`), loops needing
//!   `private` temporaries, imbalanced bodies needing `schedule(dynamic)`;
//! * negative templates: I/O inside the loop, loop-carried dependences,
//!   prefix sums, recurrences, tiny trip counts, `rand()`/`malloc` calls,
//!   pointer chasing, early exits, side-effecting helper calls;
//! * ambiguous templates emitted into *both* classes, reproducing the
//!   label noise inherent in developer-annotated data (the reason the
//!   paper's ceiling is ~0.85, not 1.0).
//!
//! The module layout mirrors the paper's data pipeline (Figure 2):
//! [`generator`] → [`database`] (dedup + stats for Tables 3-4 / Figure 3)
//! → [`dataset`] (80/10/10 balanced splits, Table 5). [`suites`] generates
//! the held-out PolyBench-like and SPEC-like benchmarks of Table 11.
//!
//! ```
//! use pragformer_corpus::{GeneratorConfig, generate};
//! let db = generate(&GeneratorConfig { target_records: 200, seed: 7, ..Default::default() });
//! assert!(db.len() >= 190);
//! let stats = db.stats();
//! assert!(stats.with_directive > 0 && stats.with_directive < db.len());
//! ```

pub mod database;
pub mod dataset;
pub mod domain;
pub mod export;
pub mod generator;
pub mod names;
pub mod record;
pub mod suites;
mod templates;

pub use database::{Database, DbStats, LengthHistogram};
pub use dataset::{ClauseKind, Dataset, Example, Split};
pub use domain::Domain;
pub use generator::{generate, GeneratorConfig};
pub use record::Record;
