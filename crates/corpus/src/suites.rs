//! Held-out benchmark suites for the generalization experiment (Table 11).
//!
//! * [`polybench`] — clean, affine compute kernels in the PolyBench style:
//!   `POLYBENCH_LOOP_BOUND(...)` bound macros, matrix names (`A`, `x1`,
//!   `y_1`, `maxgrid`), 64 annotated / 83 unannotated snippets;
//! * [`spec_omp`] — SPEC-flavoured application code: `register` storage
//!   classes, `ssize_t`/`IndexPacket` typedef casts, struct member chains
//!   and I/O, 113 annotated / 174 unannotated snippets. The `register`
//!   keyword and unknown typedefs are what made ComPar fail to parse SPEC
//!   snippets in the paper — the strict front-end in
//!   `pragformer-baselines` trips over exactly these.

use crate::database::Database;
use crate::domain::Domain;
use crate::names::NamePool;
use crate::record::Record;
use crate::templates::{negative_templates, positive_templates, Template, TemplateOutput};
use pragformer_cparse::{Decl, Expr, ForInit, Init, Stmt, Type};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the PolyBench-like suite: `with` annotated + `without` serial
/// snippets (defaults follow the paper: 64/83).
pub fn polybench(seed: u64) -> Database {
    suite(
        seed,
        64,
        83,
        Domain::Benchmark,
        polybench_style as fn(&mut StdRng, TemplateOutput) -> TemplateOutput,
    )
}

/// Builds the SPEC-OMP-like suite (113 annotated / 174 serial).
pub fn spec_omp(seed: u64) -> Database {
    suite(
        seed,
        113,
        174,
        Domain::GenericApplication,
        spec_style as fn(&mut StdRng, TemplateOutput) -> TemplateOutput,
    )
}

fn suite(
    seed: u64,
    n_pos: usize,
    n_neg: usize,
    domain: Domain,
    style: fn(&mut StdRng, TemplateOutput) -> TemplateOutput,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::with_capacity(n_pos + n_neg);
    let mut db = Database::new();
    let emit = |templates: &[Template],
                want: usize,
                rng: &mut StdRng,
                records: &mut Vec<Record>,
                db: &mut Database| {
        let mut made = 0usize;
        let mut guard = 0usize;
        while made < want && guard < want * 6 + 64 {
            guard += 1;
            let t = templates[rng.gen_range(0..templates.len())];
            let mut pool = NamePool::new(rng.gen());
            let out = style(rng, t(&mut pool));
            let record = Record {
                id: records.len(),
                stmts: out.stmts,
                helpers: out.helpers,
                directive: out.directive,
                domain,
                template: out.template,
            };
            if db.try_insert_key(&record) {
                records.push(record);
                made += 1;
            }
        }
    };
    emit(positive_templates(), n_pos, &mut rng, &mut records, &mut db);
    emit(negative_templates(), n_neg, &mut rng, &mut records, &mut db);
    db.set_records(records);
    db
}

/// PolyBench flavour: loop bounds become `POLYBENCH_LOOP_BOUND(C, n)`
/// macro calls (paper Table 12, example 1).
fn polybench_style(rng: &mut StdRng, mut out: TemplateOutput) -> TemplateOutput {
    if rng.gen::<f32>() < 0.7 {
        let c = *[500, 1000, 2000, 4000].get(rng.gen_range(0..4)).unwrap_or(&4000);
        for s in &mut out.stmts {
            wrap_loop_bounds(s, c);
        }
    }
    out
}

fn wrap_loop_bounds(s: &mut Stmt, c: i64) {
    if let Stmt::For { cond, body, .. } = s {
        if let Some(Expr::Binary { r, .. }) = cond {
            if let Expr::Id(bound) = r.as_ref() {
                **r =
                    Expr::call("POLYBENCH_LOOP_BOUND", vec![Expr::int(c), Expr::id(bound.clone())]);
            }
        }
        wrap_loop_bounds(body, c);
    } else if let Stmt::Compound(stmts) = s {
        for st in stmts {
            wrap_loop_bounds(st, c);
        }
    }
}

/// SPEC flavour: `register` declarations for loop counters, typedef casts
/// on bounds, struct member targets.
fn spec_style(rng: &mut StdRng, mut out: TemplateOutput) -> TemplateOutput {
    let roll: f32 = rng.gen();
    if roll < 0.45 {
        // Prepend `register int i;` for the outer loop variable — the
        // keyword the paper blames for ComPar's SPEC parse failures.
        if let Some(var) = outer_loop_var(&out.stmts) {
            let mut ty = Type::int();
            ty.is_register = true;
            out.stmts.insert(
                0,
                Stmt::Decl(vec![Decl { name: var, ty, array_dims: vec![], init: None }]),
            );
        }
    } else if roll < 0.75 {
        // Cast the loop bound through a typedef: `i < ((ssize_t) n)`.
        let ty_name = if rng.gen::<bool>() { "ssize_t" } else { "size_t" };
        for s in &mut out.stmts {
            cast_loop_bounds(s, ty_name);
        }
    }
    out
}

fn outer_loop_var(stmts: &[Stmt]) -> Option<String> {
    for s in stmts {
        if let Stmt::For { init, .. } = s {
            match init {
                ForInit::Expr(Expr::Assign { lhs, .. }) => {
                    if let Expr::Id(v) = lhs.as_ref() {
                        return Some(v.clone());
                    }
                }
                ForInit::Decl(decls) => return decls.first().map(|d| d.name.clone()),
                _ => {}
            }
        }
    }
    None
}

fn cast_loop_bounds(s: &mut Stmt, ty_name: &str) {
    if let Stmt::For { cond, body, .. } = s {
        if let Some(Expr::Binary { r, .. }) = cond {
            if matches!(r.as_ref(), Expr::Id(_)) {
                let inner = std::mem::replace(r.as_mut(), Expr::int(0));
                **r = Expr::Cast {
                    ty: Type {
                        base: pragformer_cparse::BaseType::Named(ty_name.to_string()),
                        ..Default::default()
                    },
                    expr: Box::new(inner),
                };
            }
        }
        cast_loop_bounds(body, ty_name);
    } else if let Stmt::Compound(stmts) = s {
        for st in stmts {
            cast_loop_bounds(st, ty_name);
        }
    }
}

/// A literal rendition of the paper's Table 12 example 3: the SPEC
/// colormap loop with a `schedule(dynamic, 4)` directive. Used by the
/// explainability harness (Figure 8).
pub fn spec_colormap_example() -> Record {
    let src = "for (i = 0; i < ((ssize_t) colors); i++)\n    colormap[i] = (IndexPacket) i;";
    let stmts = pragformer_cparse::parse_snippet(src).expect("fixed example parses");
    let directive =
        pragformer_cparse::omp::OmpDirective::parse(" parallel for schedule(dynamic,4)")
            .expect("fixed directive parses");
    Record {
        id: usize::MAX,
        stmts,
        helpers: vec![],
        directive: Some(directive),
        domain: Domain::GenericApplication,
        template: "spec/colormap",
    }
}

/// Ensures suite records never leak `Init::List` invariants; small helper
/// kept public for the property tests.
pub fn record_is_well_formed(r: &Record) -> bool {
    let mut ok = true;
    for s in &r.stmts {
        s.walk(&mut |st| {
            if let Stmt::Decl(decls) = st {
                for d in decls {
                    if let Some(Init::List(es)) = &d.init {
                        ok &= !es.is_empty();
                    }
                }
            }
        });
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragformer_cparse::parse_snippet;

    #[test]
    fn polybench_counts_match_paper() {
        let db = polybench(1);
        let stats = db.stats();
        assert_eq!(stats.total, 64 + 83);
        assert_eq!(stats.with_directive, 64);
    }

    #[test]
    fn spec_counts_match_paper() {
        let db = spec_omp(2);
        let stats = db.stats();
        assert_eq!(stats.total, 113 + 174);
        assert_eq!(stats.with_directive, 113);
    }

    #[test]
    fn polybench_uses_bound_macros() {
        let db = polybench(3);
        let with_macro =
            db.records().iter().filter(|r| r.code().contains("POLYBENCH_LOOP_BOUND")).count();
        assert!(with_macro > db.len() / 4, "only {with_macro} macro'd records");
    }

    #[test]
    fn spec_has_register_and_typedef_casts() {
        let db = spec_omp(4);
        let with_register = db.records().iter().filter(|r| r.code().contains("register ")).count();
        let with_cast = db
            .records()
            .iter()
            .filter(|r| r.code().contains("(ssize_t)") || r.code().contains("(size_t)"))
            .count();
        assert!(with_register > db.len() / 10, "register: {with_register}");
        assert!(with_cast > db.len() / 10, "casts: {with_cast}");
    }

    #[test]
    fn all_suite_records_parse() {
        for db in [polybench(5), spec_omp(6)] {
            for r in db.records() {
                parse_snippet(&r.code()).unwrap_or_else(|e| {
                    panic!("suite record {} unparseable: {e}\n{}", r.template, r.code())
                });
                assert!(record_is_well_formed(r));
            }
        }
    }

    #[test]
    fn colormap_example_matches_table12() {
        let r = spec_colormap_example();
        assert!(r.code().contains("(ssize_t)"));
        assert!(r.code().contains("(IndexPacket)"));
        assert!(r.directive.as_ref().unwrap().to_string().contains("schedule(dynamic, 4)"));
    }
}
