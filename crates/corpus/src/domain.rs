//! Source-domain labels (paper Figure 3).

/// Where a snippet's repository "comes from", per the paper's README-based
/// classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Repository without a README — domain unknown (33.5%).
    Unknown,
    /// README mentions "benchmark" (16.5%).
    Benchmark,
    /// README mentions "testing" (7%).
    Testing,
    /// Everything else — assumed generic application (43%).
    GenericApplication,
}

impl Domain {
    /// All domains with the paper's Figure 3 shares.
    pub const DISTRIBUTION: [(Domain, f32); 4] = [
        (Domain::Unknown, 0.335),
        (Domain::Benchmark, 0.165),
        (Domain::Testing, 0.07),
        (Domain::GenericApplication, 0.43),
    ];

    /// Display name as in Figure 3.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Unknown => "Unknown (no README)",
            Domain::Benchmark => "Benchmark",
            Domain::Testing => "Testing",
            Domain::GenericApplication => "Generic Application",
        }
    }

    /// Samples a domain from the Figure 3 distribution given a uniform
    /// draw in `[0, 1)`.
    pub fn sample(u: f32) -> Domain {
        let mut acc = 0.0f32;
        for (d, p) in Domain::DISTRIBUTION {
            acc += p;
            if u < acc {
                return d;
            }
        }
        Domain::GenericApplication
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_one() {
        let total: f32 = Domain::DISTRIBUTION.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sample_boundaries() {
        assert_eq!(Domain::sample(0.0), Domain::Unknown);
        assert_eq!(Domain::sample(0.34), Domain::Benchmark);
        assert_eq!(Domain::sample(0.51), Domain::Testing);
        assert_eq!(Domain::sample(0.6), Domain::GenericApplication);
        assert_eq!(Domain::sample(0.9999), Domain::GenericApplication);
    }

    #[test]
    fn empirical_frequencies_track_targets() {
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for t in 0..n {
            let u = t as f32 / n as f32;
            *counts.entry(Domain::sample(u)).or_insert(0usize) += 1;
        }
        for (d, p) in Domain::DISTRIBUTION {
            let freq = counts[&d] as f32 / n as f32;
            assert!((freq - p).abs() < 0.01, "{d:?}: {freq} vs {p}");
        }
    }
}
