//! Snippet templates.
//!
//! Each template is a function from a [`NamePool`] to a loop snippet plus
//! its label. Positive templates produce a directive; negative templates
//! produce none; ambiguous templates are emitted into either class by the
//! generator, modelling developer-annotation noise.

mod ambiguous;
mod negative;
mod positive;

pub use ambiguous::ambiguous_templates;
pub use negative::negative_templates;
pub use positive::positive_templates;

use crate::names::NamePool;
use pragformer_cparse::omp::OmpDirective;
use pragformer_cparse::{
    AssignOp, BaseType, BinOp, Decl, Expr, ForInit, FuncDef, Init, ParamDecl, Stmt, Type, UnOp,
};

/// A generated snippet before it becomes a [`crate::Record`].
#[derive(Clone, Debug)]
pub struct TemplateOutput {
    /// Loop snippet statements (no pragma node; the directive is separate).
    pub stmts: Vec<Stmt>,
    /// Helper function definitions referenced by the snippet.
    pub helpers: Vec<FuncDef>,
    /// The label: `Some` ⇒ positive record.
    pub directive: Option<OmpDirective>,
    /// Template name for ablations.
    pub template: &'static str,
}

/// A template generator function.
pub type Template = fn(&mut NamePool) -> TemplateOutput;

// ---- AST building helpers (shared by all template modules) --------------

/// `for (var = 0; var < bound; var++) body`
pub(crate) fn count_loop(var: &str, bound: Expr, body: Stmt) -> Stmt {
    Stmt::For {
        init: ForInit::Expr(Expr::assign(Expr::id(var), Expr::int(0))),
        cond: Some(Expr::bin(BinOp::Lt, Expr::id(var), bound)),
        step: Some(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::id(var)) }),
        body: Box::new(body),
    }
}

/// `a[i]`
pub(crate) fn idx(arr: &str, i: &str) -> Expr {
    Expr::index(Expr::id(arr), Expr::id(i))
}

/// `a[i][j]`
pub(crate) fn idx2(arr: &str, i: &str, j: &str) -> Expr {
    Expr::index(idx(arr, i), Expr::id(j))
}

/// `lhs op= rhs;` as a statement.
pub(crate) fn assign_stmt(lhs: Expr, rhs: Expr) -> Stmt {
    Stmt::Expr(Expr::assign(lhs, rhs))
}

/// `lhs += rhs;`
pub(crate) fn add_assign_stmt(lhs: Expr, rhs: Expr) -> Stmt {
    Stmt::Expr(Expr::Assign { op: AssignOp::Add, lhs: Box::new(lhs), rhs: Box::new(rhs) })
}

/// Declaration statement `ty name = init;`.
pub(crate) fn decl(ty: Type, name: &str, init: Option<Expr>) -> Stmt {
    Stmt::Decl(vec![Decl {
        name: name.to_string(),
        ty,
        array_dims: Vec::new(),
        init: init.map(Init::Expr),
    }])
}

/// A float literal expression with clean source text.
pub(crate) fn flit(v: f64) -> Expr {
    let text = if v.fract() == 0.0 { format!("{v:.1}") } else { format!("{v}") };
    Expr::FloatLit(v, text)
}

/// A pure numeric helper function `double name(double v) { return <poly>; }`.
pub(crate) fn pure_helper(name: &str, pool: &mut NamePool) -> FuncDef {
    let v = "v";
    let c1 = pool.int_in(2, 9);
    let c2 = pool.int_in(1, 7);
    let body = Stmt::Compound(vec![Stmt::Return(Some(Expr::bin(
        BinOp::Add,
        Expr::bin(BinOp::Mul, Expr::id(v), Expr::bin(BinOp::Add, Expr::id(v), Expr::int(c1))),
        Expr::int(c2),
    )))]);
    FuncDef {
        ret: Type::double(),
        name: name.to_string(),
        params: vec![ParamDecl { name: v.into(), ty: Type::double(), array_dims: vec![] }],
        body,
    }
}

/// A helper with a side effect on a global accumulator (the classic
/// "function side effects defeat S2S compilers" case from the paper).
pub(crate) fn impure_helper(name: &str, global: &str) -> FuncDef {
    let v = "v";
    let body = Stmt::Compound(vec![
        Stmt::Expr(Expr::Assign {
            op: AssignOp::Add,
            lhs: Box::new(Expr::id(global)),
            rhs: Box::new(Expr::id(v)),
        }),
        Stmt::Return(Some(Expr::id(global))),
    ]);
    FuncDef {
        ret: Type::double(),
        name: name.to_string(),
        params: vec![ParamDecl { name: v.into(), ty: Type::double(), array_dims: vec![] }],
        body,
    }
}

/// Extra independent element-wise statements appended to a loop body to
/// reproduce the Table 4 length distribution (most snippets short, a tail
/// beyond 100 lines).
pub(crate) fn padding_stmts(pool: &mut NamePool, loop_var: &str, count: usize) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let arr = pool.array();
        let src = pool.array();
        let c = pool.int_in(1, 12);
        let rhs = match pool.int_in(0, 4) {
            0 => Expr::bin(BinOp::Add, idx(&src, loop_var), Expr::int(c)),
            1 => Expr::bin(BinOp::Mul, idx(&src, loop_var), Expr::int(c)),
            2 => Expr::bin(BinOp::Sub, idx(&src, loop_var), flit(c as f64 / 2.0)),
            _ => Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, idx(&src, loop_var), Expr::int(c)),
                Expr::id(loop_var),
            ),
        };
        out.push(assign_stmt(idx(&arr, loop_var), rhs));
    }
    out
}

/// Samples a body-padding size from the heavy-tailed Table 4 mixture:
/// 56% of snippets stay under 10 source lines, ~35% land in 11-50,
/// ~4.5% in 51-100 and ~4% beyond 100 (a padded loop prints roughly
/// `extra + 4` lines).
pub(crate) fn sample_padding(pool: &mut NamePool) -> usize {
    let u = pool.int_in(0, 1000) as f32 / 1000.0;
    if u < 0.56 {
        pool.int_in(0, 3) as usize
    } else if u < 0.91 {
        pool.int_in(8, 44) as usize
    } else if u < 0.955 {
        pool.int_in(48, 92) as usize
    } else {
        pool.int_in(100, 145) as usize
    }
}

/// Wraps a multi-statement body in a compound. Length padding itself is
/// applied uniformly by the generator (`generator::pad_outer_loop`), so
/// templates stay minimal.
pub(crate) fn pad_body(_pool: &mut NamePool, _loop_var: &str, body: Vec<Stmt>) -> Stmt {
    if body.len() == 1 {
        return body.into_iter().next().expect("non-empty body");
    }
    Stmt::Compound(body)
}

/// Crate-visible re-export of [`sample_padding`] for the generator.
pub(crate) fn sample_padding_public(pool: &mut NamePool) -> usize {
    sample_padding(pool)
}

/// Crate-visible re-export of [`padding_stmts`] for the generator.
pub(crate) fn padding_stmts_public(pool: &mut NamePool, loop_var: &str, count: usize) -> Vec<Stmt> {
    padding_stmts(pool, loop_var, count)
}

/// `int` type helper.
pub(crate) fn int_ty() -> Type {
    Type::int()
}

/// `double` type helper.
pub(crate) fn double_ty() -> Type {
    Type::double()
}

/// A named (typedef-like) type, e.g. `size_t`.
#[allow(dead_code)] // used by suite-flavoured templates and kept for extensions
pub(crate) fn named_ty(name: &str) -> Type {
    Type { base: BaseType::Named(name.to_string()), ..Default::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragformer_cparse::parse_snippet;
    use pragformer_cparse::printer::print_stmts;

    fn check_parses(out: &TemplateOutput) {
        let printed = print_stmts(&out.stmts);
        parse_snippet(&printed)
            .unwrap_or_else(|e| panic!("template {} unparseable: {e}\n{printed}", out.template));
    }

    #[test]
    fn every_positive_template_parses_and_has_directive() {
        for (ti, t) in positive_templates().iter().enumerate() {
            for seed in 0..8 {
                let mut pool = NamePool::new(seed * 131 + ti as u64);
                let out = t(&mut pool);
                assert!(out.directive.is_some(), "positive template {} lost label", out.template);
                check_parses(&out);
            }
        }
    }

    #[test]
    fn every_negative_template_parses_and_has_no_directive() {
        for (ti, t) in negative_templates().iter().enumerate() {
            for seed in 0..8 {
                let mut pool = NamePool::new(seed * 173 + ti as u64);
                let out = t(&mut pool);
                assert!(out.directive.is_none(), "negative template {} has label", out.template);
                check_parses(&out);
            }
        }
    }

    #[test]
    fn ambiguous_templates_parse() {
        for (ti, (t, p_pos)) in ambiguous_templates().iter().enumerate() {
            assert!((0.0..=1.0).contains(p_pos));
            let mut pool = NamePool::new(7 + ti as u64);
            let out = t(&mut pool);
            check_parses(&out);
        }
    }

    #[test]
    fn helper_functions_print_and_parse() {
        let mut pool = NamePool::new(5);
        let f = pure_helper("f", &mut pool);
        let tu =
            pragformer_cparse::TranslationUnit { items: vec![pragformer_cparse::Item::Func(f)] };
        let printed = pragformer_cparse::printer::print_translation_unit(&tu);
        assert!(pragformer_cparse::parse_translation_unit(&printed).is_ok(), "{printed}");
    }

    #[test]
    fn padding_distribution_is_heavy_tailed() {
        let mut pool = NamePool::new(11);
        let sizes: Vec<usize> = (0..2000).map(|_| sample_padding(&mut pool)).collect();
        let small = sizes.iter().filter(|s| **s <= 3).count() as f64 / sizes.len() as f64;
        let medium =
            sizes.iter().filter(|s| **s >= 8 && **s <= 44).count() as f64 / sizes.len() as f64;
        let big = sizes.iter().filter(|s| **s >= 48).count() as f64 / sizes.len() as f64;
        assert!((0.50..0.62).contains(&small), "small fraction {small}");
        assert!((0.28..0.42).contains(&medium), "medium fraction {medium}");
        assert!((0.05..0.13).contains(&big), "big fraction {big}");
    }
}
