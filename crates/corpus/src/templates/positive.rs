//! Positive templates: loops a developer annotated with
//! `#pragma omp parallel for`.
//!
//! Clause frequencies are tuned so the raw database reproduces the paper's
//! Table 3 proportions: ~95% `schedule(static)` (i.e. no schedule clause,
//! the default), ~5% `schedule(dynamic)`, ~45% `private`, ~19%
//! `reduction`.

use super::*;
use pragformer_cparse::omp::{OmpClause, ReductionOp, ScheduleKind};

/// All positive templates.
pub fn positive_templates() -> &'static [Template] {
    &[
        vec_init,
        vec_copy,
        vec_scale,
        axpy,
        triad,
        elementwise_math,
        polynomial,
        conditional_assign,
        matvec_private,
        gemm_private,
        stencil_jacobi,
        init_2d_private,
        transpose_private,
        dot_reduction,
        sum_reduction,
        norm_reduction,
        prod_reduction,
        max_reduction,
        min_reduction,
        count_reduction,
        imbalanced_dynamic,
        helper_call_parallel,
        private_temporary,
        row_sums_private,
        shifted_read_other_array,
        jacobi_1d,
        reverse_copy,
    ]
}

/// `a[i] = b[i - 1] + b[i];` — token-twin of the *negative*
/// `a[i] = a[i - 1] + b[i]` (loop-carried flow). Only the structure — the
/// shifted read hitting a *different* array — separates the classes;
/// bag-of-words counting cannot tell them apart reliably.
fn shifted_read_other_array(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a, b) = (pool.loop_var(), pool.bound(), pool.array(), pool.array());
    let prev = Expr::index(Expr::id(&b), Expr::bin(BinOp::Sub, Expr::id(&i), Expr::int(1)));
    let body = assign_stmt(idx(&a, &i), Expr::bin(BinOp::Add, prev, idx(&b, &i)));
    let outer = Stmt::For {
        init: ForInit::Expr(Expr::assign(Expr::id(&i), Expr::int(1))),
        cond: Some(Expr::bin(BinOp::Lt, Expr::id(&i), Expr::id(&n))),
        step: Some(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::id(&i)) }),
        body: Box::new(body),
    };
    TemplateOutput {
        stmts: vec![outer],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/shifted_read_other_array",
    }
}

/// 1-D Jacobi into a separate output — token-twin of the negative
/// in-place stencil.
fn jacobi_1d(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, src, dst) = (pool.loop_var(), pool.bound(), pool.array(), pool.array());
    let left = Expr::index(Expr::id(&src), Expr::bin(BinOp::Sub, Expr::id(&i), Expr::int(1)));
    let right = Expr::index(Expr::id(&src), Expr::bin(BinOp::Add, Expr::id(&i), Expr::int(1)));
    let body = assign_stmt(
        idx(&dst, &i),
        Expr::bin(BinOp::Mul, flit(0.5), Expr::bin(BinOp::Add, left, right)),
    );
    let outer = Stmt::For {
        init: ForInit::Expr(Expr::assign(Expr::id(&i), Expr::int(1))),
        cond: Some(Expr::bin(
            BinOp::Lt,
            Expr::id(&i),
            Expr::bin(BinOp::Sub, Expr::id(&n), Expr::int(1)),
        )),
        step: Some(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::id(&i)) }),
        body: Box::new(body),
    };
    TemplateOutput {
        stmts: vec![outer],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/jacobi_1d",
    }
}

/// `b[i] = a[n - 1 - i];` — token-twin of the negative in-place reverse
/// `a[i] = a[n - 1 - i]`.
fn reverse_copy(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a, b) = (pool.loop_var(), pool.bound(), pool.array(), pool.array());
    let mirrored = Expr::index(
        Expr::id(&a),
        Expr::bin(BinOp::Sub, Expr::bin(BinOp::Sub, Expr::id(&n), Expr::int(1)), Expr::id(&i)),
    );
    let body = assign_stmt(idx(&b, &i), mirrored);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/reverse_copy",
    }
}

fn plain_for() -> OmpDirective {
    OmpDirective::parallel_for()
}

/// `for (i..n) a[i] = i * c;`
fn vec_init(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a) = (pool.loop_var(), pool.bound(), pool.array());
    let c = pool.int_in(1, 10);
    let rhs = if pool.chance(0.5) {
        Expr::bin(BinOp::Mul, Expr::id(&i), Expr::int(c))
    } else {
        Expr::int(0)
    };
    let body = pad_body(pool, &i, vec![assign_stmt(idx(&a, &i), rhs)]);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/vec_init",
    }
}

/// `b[i] = a[i];`
fn vec_copy(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a, b) = (pool.loop_var(), pool.bound(), pool.array(), pool.array());
    let body = pad_body(pool, &i, vec![assign_stmt(idx(&b, &i), idx(&a, &i))]);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/vec_copy",
    }
}

/// `b[i] = b[i] * alpha;`
fn vec_scale(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, b, alpha) = (pool.loop_var(), pool.bound(), pool.array(), pool.scalar());
    let body = pad_body(
        pool,
        &i,
        vec![assign_stmt(idx(&b, &i), Expr::bin(BinOp::Mul, idx(&b, &i), Expr::id(&alpha)))],
    );
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/vec_scale",
    }
}

/// `y[i] = a * x[i] + y[i];`
fn axpy(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (x, y, a) = (pool.array(), pool.array(), pool.scalar());
    let rhs = Expr::bin(BinOp::Add, Expr::bin(BinOp::Mul, Expr::id(&a), idx(&x, &i)), idx(&y, &i));
    let body = pad_body(pool, &i, vec![assign_stmt(idx(&y, &i), rhs)]);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/axpy",
    }
}

/// STREAM triad `a[i] = b[i] + s * c[i];`
fn triad(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, b, c, s) = (pool.array(), pool.array(), pool.array(), pool.scalar());
    let rhs = Expr::bin(BinOp::Add, idx(&b, &i), Expr::bin(BinOp::Mul, Expr::id(&s), idx(&c, &i)));
    let body = pad_body(pool, &i, vec![assign_stmt(idx(&a, &i), rhs)]);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/triad",
    }
}

/// `y[i] = sqrt(x[i]);` — pure math-library calls are safe to parallelize.
fn elementwise_math(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, x, y) = (pool.loop_var(), pool.bound(), pool.array(), pool.array());
    let f = *pool.pick(&["sqrt", "exp", "fabs", "log", "sin", "cos"]);
    let body = pad_body(pool, &i, vec![assign_stmt(idx(&y, &i), Expr::call(f, vec![idx(&x, &i)]))]);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/elementwise_math",
    }
}

/// Horner polynomial evaluation per element.
fn polynomial(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, x, y) = (pool.loop_var(), pool.bound(), pool.array(), pool.array());
    let (c0, c1, c2) = (pool.int_in(1, 9), pool.int_in(1, 9), pool.int_in(1, 9));
    let horner = Expr::bin(
        BinOp::Add,
        Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::bin(BinOp::Mul, Expr::int(c2), idx(&x, &i)), Expr::int(c1)),
            idx(&x, &i),
        ),
        Expr::int(c0),
    );
    let body = pad_body(pool, &i, vec![assign_stmt(idx(&y, &i), horner)]);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/polynomial",
    }
}

/// `b[i] = a[i] > t ? a[i] : 0;` — branch without cross-iteration state.
fn conditional_assign(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a, b, t) =
        (pool.loop_var(), pool.bound(), pool.array(), pool.array(), pool.scalar());
    let rhs = Expr::Ternary {
        cond: Box::new(Expr::bin(BinOp::Gt, idx(&a, &i), Expr::id(&t))),
        then: Box::new(idx(&a, &i)),
        else_: Box::new(Expr::int(0)),
    };
    let body = pad_body(pool, &i, vec![assign_stmt(idx(&b, &i), rhs)]);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for()),
        template: "pos/conditional_assign",
    }
}

/// Matrix–vector product with inner accumulator: `private(j, s)`.
fn matvec_private(pool: &mut NamePool) -> TemplateOutput {
    let (i, j) = (pool.loop_var(), pool.loop_var());
    let (n, m) = (pool.bound(), pool.bound());
    let (mat, x, y, s) = (pool.array(), pool.array(), pool.array(), pool.scalar());
    let inner = count_loop(
        &j,
        Expr::id(&m),
        add_assign_stmt(Expr::id(&s), Expr::bin(BinOp::Mul, idx2(&mat, &i, &j), idx(&x, &j))),
    );
    let body = Stmt::Compound(vec![
        assign_stmt(Expr::id(&s), flit(0.0)),
        inner,
        assign_stmt(idx(&y, &i), Expr::id(&s)),
    ]);
    TemplateOutput {
        stmts: vec![decl(double_ty(), &s, None), count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for().with(OmpClause::Private(vec![j.clone(), s.clone()]))),
        template: "pos/matvec_private",
    }
}

/// Dense GEMM, directive on the outer loop with `private(j, k)`.
fn gemm_private(pool: &mut NamePool) -> TemplateOutput {
    let (i, j, k) = (pool.loop_var(), pool.loop_var(), pool.loop_var());
    let n = pool.bound();
    let (a, b, c) = (pool.array(), pool.array(), pool.array());
    let inner_k = count_loop(
        &k,
        Expr::id(&n),
        add_assign_stmt(
            idx2(&c, &i, &j),
            Expr::bin(BinOp::Mul, idx2(&a, &i, &k), idx2(&b, &k, &j)),
        ),
    );
    let inner_j = count_loop(
        &j,
        Expr::id(&n),
        Stmt::Compound(vec![assign_stmt(idx2(&c, &i, &j), flit(0.0)), inner_k]),
    );
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), inner_j)],
        helpers: vec![],
        directive: Some(plain_for().with(OmpClause::Private(vec![j.clone(), k.clone()]))),
        template: "pos/gemm_private",
    }
}

/// Jacobi-style stencil writing into a separate output array.
fn stencil_jacobi(pool: &mut NamePool) -> TemplateOutput {
    let (i, j) = (pool.loop_var(), pool.loop_var());
    let n = pool.bound();
    let (src, dst) = (pool.array(), pool.array());
    let sum = Expr::bin(
        BinOp::Add,
        Expr::bin(
            BinOp::Add,
            idx2(&src, &i, &j),
            Expr::index(
                Expr::index(Expr::id(&src), Expr::bin(BinOp::Sub, Expr::id(&i), Expr::int(1))),
                Expr::id(&j),
            ),
        ),
        Expr::index(
            Expr::index(Expr::id(&src), Expr::bin(BinOp::Add, Expr::id(&i), Expr::int(1))),
            Expr::id(&j),
        ),
    );
    let body = count_loop(
        &j,
        Expr::id(&n),
        assign_stmt(idx2(&dst, &i, &j), Expr::bin(BinOp::Mul, flit(0.33), sum)),
    );
    // Interior loop: for (i = 1; i < n - 1; i++)
    let outer = Stmt::For {
        init: ForInit::Expr(Expr::assign(Expr::id(&i), Expr::int(1))),
        cond: Some(Expr::bin(
            BinOp::Lt,
            Expr::id(&i),
            Expr::bin(BinOp::Sub, Expr::id(&n), Expr::int(1)),
        )),
        step: Some(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::id(&i)) }),
        body: Box::new(body),
    };
    TemplateOutput {
        stmts: vec![outer],
        helpers: vec![],
        directive: Some(plain_for().with(OmpClause::Private(vec![j.clone()]))),
        template: "pos/stencil_jacobi",
    }
}

/// 2-D initialization with `private(j)`.
fn init_2d_private(pool: &mut NamePool) -> TemplateOutput {
    let (i, j) = (pool.loop_var(), pool.loop_var());
    let (rows, cols) = (pool.bound(), pool.bound());
    let a = pool.array();
    let rhs = if pool.chance(0.5) {
        Expr::bin(BinOp::Mul, Expr::id(&i), Expr::id(&j))
    } else {
        Expr::int(0)
    };
    let body = count_loop(&j, Expr::id(&cols), assign_stmt(idx2(&a, &i, &j), rhs));
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&rows), body)],
        helpers: vec![],
        directive: Some(plain_for().with(OmpClause::Private(vec![j.clone()]))),
        template: "pos/init_2d_private",
    }
}

/// Out-of-place transpose with `private(j)`.
fn transpose_private(pool: &mut NamePool) -> TemplateOutput {
    let (i, j) = (pool.loop_var(), pool.loop_var());
    let n = pool.bound();
    let (a, at) = (pool.array(), pool.array());
    let body = count_loop(&j, Expr::id(&n), assign_stmt(idx2(&at, &j, &i), idx2(&a, &i, &j)));
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for().with(OmpClause::Private(vec![j.clone()]))),
        template: "pos/transpose_private",
    }
}

#[allow(clippy::too_many_arguments)] // internal scaffold shared by 7 templates
fn reduction_scaffold(
    pool: &mut NamePool,
    op: ReductionOp,
    acc: &str,
    init: Expr,
    body_stmt: Stmt,
    i: &str,
    n: &str,
    template: &'static str,
) -> TemplateOutput {
    let decl_first = pool.chance(0.6);
    let mut stmts = Vec::new();
    if decl_first {
        stmts.push(decl(double_ty(), acc, Some(init)));
    } else {
        stmts.push(assign_stmt(Expr::id(acc), init));
    }
    stmts.push(count_loop(i, Expr::id(n), body_stmt));
    TemplateOutput {
        stmts,
        helpers: vec![],
        directive: Some(plain_for().with(OmpClause::Reduction { op, vars: vec![acc.to_string()] })),
        template,
    }
}

/// Dot product: `reduction(+: s)`.
fn dot_reduction(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, b, s) = (pool.array(), pool.array(), pool.scalar());
    let body = add_assign_stmt(Expr::id(&s), Expr::bin(BinOp::Mul, idx(&a, &i), idx(&b, &i)));
    reduction_scaffold(pool, ReductionOp::Add, &s, flit(0.0), body, &i, &n, "pos/dot_reduction")
}

/// Plain sum: `reduction(+: s)`.
fn sum_reduction(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, s) = (pool.array(), pool.scalar());
    let body = add_assign_stmt(Expr::id(&s), idx(&a, &i));
    reduction_scaffold(pool, ReductionOp::Add, &s, flit(0.0), body, &i, &n, "pos/sum_reduction")
}

/// Squared norm: `reduction(+: s)`.
fn norm_reduction(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, s) = (pool.array(), pool.scalar());
    let body = add_assign_stmt(Expr::id(&s), Expr::bin(BinOp::Mul, idx(&a, &i), idx(&a, &i)));
    reduction_scaffold(pool, ReductionOp::Add, &s, flit(0.0), body, &i, &n, "pos/norm_reduction")
}

/// Product: `reduction(*: p)`.
fn prod_reduction(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, p) = (pool.array(), pool.scalar());
    let body = Stmt::Expr(Expr::Assign {
        op: AssignOp::Mul,
        lhs: Box::new(Expr::id(&p)),
        rhs: Box::new(idx(&a, &i)),
    });
    reduction_scaffold(pool, ReductionOp::Mul, &p, flit(1.0), body, &i, &n, "pos/prod_reduction")
}

/// Max scan: `reduction(max: m)`.
fn max_reduction(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, m) = (pool.array(), pool.scalar());
    let body = Stmt::If {
        cond: Expr::bin(BinOp::Gt, idx(&a, &i), Expr::id(&m)),
        then: Box::new(assign_stmt(Expr::id(&m), idx(&a, &i))),
        else_: None,
    };
    reduction_scaffold(pool, ReductionOp::Max, &m, flit(0.0), body, &i, &n, "pos/max_reduction")
}

/// Min scan: `reduction(min: m)`.
fn min_reduction(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, m) = (pool.array(), pool.scalar());
    let body = Stmt::If {
        cond: Expr::bin(BinOp::Lt, idx(&a, &i), Expr::id(&m)),
        then: Box::new(assign_stmt(Expr::id(&m), idx(&a, &i))),
        else_: None,
    };
    reduction_scaffold(
        pool,
        ReductionOp::Min,
        &m,
        Expr::FloatLit(1e9, "1e9".into()),
        body,
        &i,
        &n,
        "pos/min_reduction",
    )
}

/// Conditional count: `reduction(+: count)`.
fn count_reduction(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, c, t) = (pool.array(), pool.scalar(), pool.scalar());
    let body = Stmt::If {
        cond: Expr::bin(BinOp::Gt, idx(&a, &i), Expr::id(&t)),
        then: Box::new(Stmt::Expr(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::id(&c)) })),
        else_: None,
    };
    let mut out = reduction_scaffold(
        pool,
        ReductionOp::Add,
        &c,
        Expr::int(0),
        body,
        &i,
        &n,
        "pos/count_reduction",
    );
    out.stmts[0] = decl(int_ty(), &c, Some(Expr::int(0)));
    out
}

/// Unbalanced branch: heavy work behind a data-dependent `if` —
/// `schedule(dynamic)` (the paper's §1.1 example #2).
fn imbalanced_dynamic(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, b) = (pool.array(), pool.array());
    let f = pool.func();
    let heavy = Stmt::Compound(vec![
        assign_stmt(idx(&b, &i), Expr::call(f.clone(), vec![idx(&a, &i)])),
        add_assign_stmt(
            idx(&b, &i),
            Expr::call(f.clone(), vec![Expr::bin(BinOp::Mul, idx(&a, &i), flit(0.5))]),
        ),
    ]);
    let cheap = assign_stmt(idx(&b, &i), Expr::int(0));
    let body = Stmt::If {
        cond: Expr::bin(
            BinOp::Eq,
            Expr::bin(BinOp::Mod, Expr::id(&i), Expr::int(pool.int_in(2, 16))),
            Expr::int(0),
        ),
        then: Box::new(heavy),
        else_: Some(Box::new(cheap)),
    };
    let chunk = *pool.pick(&[None, Some(2), Some(4), Some(8)]);
    let pool2 = pool;
    let helper = pure_helper(&f, pool2);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![helper],
        directive: Some(
            plain_for().with(OmpClause::Schedule { kind: ScheduleKind::Dynamic, chunk }),
        ),
        template: "pos/imbalanced_dynamic",
    }
}

/// Pure helper call per element — parallelizable because the callee has no
/// side effects (its implementation ships with the record).
fn helper_call_parallel(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, x, y) = (pool.loop_var(), pool.bound(), pool.array(), pool.array());
    let f = pool.func();
    let body = pad_body(
        pool,
        &i,
        vec![assign_stmt(idx(&y, &i), Expr::call(f.clone(), vec![idx(&x, &i)]))],
    );
    let helper = pure_helper(&f, pool);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![helper],
        directive: Some(plain_for()),
        template: "pos/helper_call_parallel",
    }
}

/// Scalar temporary reused each iteration: `private(tmp)`.
fn private_temporary(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, b, tmp) = (pool.array(), pool.array(), pool.scalar());
    let body = Stmt::Compound(vec![
        assign_stmt(Expr::id(&tmp), Expr::bin(BinOp::Add, idx(&a, &i), flit(1.5))),
        assign_stmt(idx(&b, &i), Expr::bin(BinOp::Mul, Expr::id(&tmp), Expr::id(&tmp))),
    ]);
    TemplateOutput {
        stmts: vec![decl(double_ty(), &tmp, None), count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(plain_for().with(OmpClause::Private(vec![tmp.clone()]))),
        template: "pos/private_temporary",
    }
}

/// Per-row sums: outer parallel, inner accumulator — `private(j, s)`.
fn row_sums_private(pool: &mut NamePool) -> TemplateOutput {
    let (i, j) = (pool.loop_var(), pool.loop_var());
    let (rows, cols) = (pool.bound(), pool.bound());
    let (mat, out, s) = (pool.array(), pool.array(), pool.scalar());
    let inner = count_loop(&j, Expr::id(&cols), add_assign_stmt(Expr::id(&s), idx2(&mat, &i, &j)));
    let body = Stmt::Compound(vec![
        assign_stmt(Expr::id(&s), flit(0.0)),
        inner,
        assign_stmt(idx(&out, &i), Expr::id(&s)),
    ]);
    TemplateOutput {
        stmts: vec![decl(double_ty(), &s, None), count_loop(&i, Expr::id(&rows), body)],
        helpers: vec![],
        directive: Some(plain_for().with(OmpClause::Private(vec![j.clone(), s.clone()]))),
        template: "pos/row_sums_private",
    }
}
