//! Negative templates: loops from OpenMP-using files that developers left
//! serial, with the concrete reasons the paper lists — I/O, loop-carried
//! dependences, tiny trip counts, unsafe calls, pointer chasing, early
//! exits and side-effecting helpers.

use super::*;

/// All negative templates.
pub fn negative_templates() -> &'static [Template] {
    &[
        io_print,
        io_read,
        file_batch,
        loop_carried_flow,
        in_place_stencil,
        prefix_sum,
        recurrence_fib,
        stride_dependence,
        running_extreme,
        induction_pointer,
        small_trip,
        rand_fill,
        alloc_in_loop,
        pointer_chase,
        early_break_search,
        impure_helper_call,
        string_accumulate,
        reverse_overlap,
    ]
}

/// I/O in the body (the paper's Table 12 example #2).
fn io_print(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, x) = (pool.loop_var(), pool.bound(), pool.array());
    let print_call = Stmt::Expr(Expr::call(
        "fprintf",
        vec![Expr::id("stderr"), Expr::StrLit("%0.2lf ".into()), idx(&x, &i)],
    ));
    let body = if pool.chance(0.5) {
        Stmt::Compound(vec![
            print_call,
            Stmt::If {
                cond: Expr::bin(
                    BinOp::Eq,
                    Expr::bin(BinOp::Mod, Expr::id(&i), Expr::int(pool.int_in(10, 30))),
                    Expr::int(0),
                ),
                then: Box::new(Stmt::Expr(Expr::call(
                    "fprintf",
                    vec![Expr::id("stderr"), Expr::StrLit(" \\n".into())],
                ))),
                else_: None,
            },
        ])
    } else {
        Stmt::Expr(Expr::call("printf", vec![Expr::StrLit("%d ".into()), idx(&x, &i)]))
    };
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/io_print",
    }
}

/// `scanf`/`fscanf` input loop.
fn io_read(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, x) = (pool.loop_var(), pool.bound(), pool.array());
    let body = if pool.chance(0.5) {
        Stmt::Expr(Expr::call(
            "scanf",
            vec![
                Expr::StrLit("%lf".into()),
                Expr::Unary { op: UnOp::AddrOf, expr: Box::new(idx(&x, &i)) },
            ],
        ))
    } else {
        Stmt::Expr(Expr::call(
            "fscanf",
            vec![
                Expr::id("fp"),
                Expr::StrLit("%d".into()),
                Expr::Unary { op: UnOp::AddrOf, expr: Box::new(idx(&x, &i)) },
            ],
        ))
    };
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/io_read",
    }
}

/// File writes in a loop (`fwrite`/`fputs`).
fn file_batch(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, buf) = (pool.loop_var(), pool.bound(), pool.array());
    let body = Stmt::Compound(vec![Stmt::Expr(Expr::call(
        "fwrite",
        vec![
            Expr::Unary { op: UnOp::AddrOf, expr: Box::new(idx(&buf, &i)) },
            Expr::Sizeof(Box::new(pragformer_cparse::SizeofArg::Type(double_ty()))),
            Expr::int(1),
            Expr::id("fp"),
        ],
    ))]);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/file_batch",
    }
}

/// `a[i] = a[i-1] + b[i];` — classic flow dependence.
fn loop_carried_flow(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a, b) = (pool.loop_var(), pool.bound(), pool.array(), pool.array());
    let prev = Expr::index(Expr::id(&a), Expr::bin(BinOp::Sub, Expr::id(&i), Expr::int(1)));
    let body = assign_stmt(idx(&a, &i), Expr::bin(BinOp::Add, prev, idx(&b, &i)));
    let outer = Stmt::For {
        init: ForInit::Expr(Expr::assign(Expr::id(&i), Expr::int(1))),
        cond: Some(Expr::bin(BinOp::Lt, Expr::id(&i), Expr::id(&n))),
        step: Some(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::id(&i)) }),
        body: Box::new(body),
    };
    TemplateOutput {
        stmts: vec![outer],
        helpers: vec![],
        directive: None,
        template: "neg/loop_carried_flow",
    }
}

/// In-place smoothing `a[i] = 0.5 * (a[i-1] + a[i+1]);` — flow + anti.
fn in_place_stencil(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a) = (pool.loop_var(), pool.bound(), pool.array());
    let left = Expr::index(Expr::id(&a), Expr::bin(BinOp::Sub, Expr::id(&i), Expr::int(1)));
    let right = Expr::index(Expr::id(&a), Expr::bin(BinOp::Add, Expr::id(&i), Expr::int(1)));
    let body = assign_stmt(
        idx(&a, &i),
        Expr::bin(BinOp::Mul, flit(0.5), Expr::bin(BinOp::Add, left, right)),
    );
    let outer = Stmt::For {
        init: ForInit::Expr(Expr::assign(Expr::id(&i), Expr::int(1))),
        cond: Some(Expr::bin(
            BinOp::Lt,
            Expr::id(&i),
            Expr::bin(BinOp::Sub, Expr::id(&n), Expr::int(1)),
        )),
        step: Some(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::id(&i)) }),
        body: Box::new(body),
    };
    TemplateOutput {
        stmts: vec![outer],
        helpers: vec![],
        directive: None,
        template: "neg/in_place_stencil",
    }
}

/// Prefix sum where the running value is *stored per iteration* — an
/// ordered dependence, not a reduction.
fn prefix_sum(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, out, s) = (pool.array(), pool.array(), pool.scalar());
    let body = Stmt::Compound(vec![
        add_assign_stmt(Expr::id(&s), idx(&a, &i)),
        assign_stmt(idx(&out, &i), Expr::id(&s)),
    ]);
    TemplateOutput {
        stmts: vec![decl(double_ty(), &s, Some(flit(0.0))), count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/prefix_sum",
    }
}

/// Fibonacci-style second-order recurrence.
fn recurrence_fib(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, f) = (pool.loop_var(), pool.bound(), pool.array());
    let f1 = Expr::index(Expr::id(&f), Expr::bin(BinOp::Sub, Expr::id(&i), Expr::int(1)));
    let f2 = Expr::index(Expr::id(&f), Expr::bin(BinOp::Sub, Expr::id(&i), Expr::int(2)));
    let body = assign_stmt(idx(&f, &i), Expr::bin(BinOp::Add, f1, f2));
    let outer = Stmt::For {
        init: ForInit::Expr(Expr::assign(Expr::id(&i), Expr::int(2))),
        cond: Some(Expr::bin(BinOp::Lt, Expr::id(&i), Expr::id(&n))),
        step: Some(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::id(&i)) }),
        body: Box::new(body),
    };
    TemplateOutput {
        stmts: vec![outer],
        helpers: vec![],
        directive: None,
        template: "neg/recurrence_fib",
    }
}

/// `a[i+1] = a[i] * c;` — write hits the next iteration's read.
fn stride_dependence(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a) = (pool.loop_var(), pool.bound(), pool.array());
    let c = pool.int_in(2, 5);
    let next = Expr::index(Expr::id(&a), Expr::bin(BinOp::Add, Expr::id(&i), Expr::int(1)));
    let body = assign_stmt(next, Expr::bin(BinOp::Mul, idx(&a, &i), Expr::int(c)));
    let outer = Stmt::For {
        init: ForInit::Expr(Expr::assign(Expr::id(&i), Expr::int(0))),
        cond: Some(Expr::bin(
            BinOp::Lt,
            Expr::id(&i),
            Expr::bin(BinOp::Sub, Expr::id(&n), Expr::int(1)),
        )),
        step: Some(Expr::Unary { op: UnOp::PostInc, expr: Box::new(Expr::id(&i)) }),
        body: Box::new(body),
    };
    TemplateOutput {
        stmts: vec![outer],
        helpers: vec![],
        directive: None,
        template: "neg/stride_dependence",
    }
}

/// Running maximum stored per element — ordered, unlike `reduction(max:)`.
fn running_extreme(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, out, m) = (pool.array(), pool.array(), pool.scalar());
    let body = Stmt::Compound(vec![
        Stmt::If {
            cond: Expr::bin(BinOp::Gt, idx(&a, &i), Expr::id(&m)),
            then: Box::new(assign_stmt(Expr::id(&m), idx(&a, &i))),
            else_: None,
        },
        assign_stmt(idx(&out, &i), Expr::id(&m)),
    ]);
    TemplateOutput {
        stmts: vec![decl(double_ty(), &m, Some(flit(0.0))), count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/running_extreme",
    }
}

/// Non-affine induction variable used as a subscript.
fn induction_pointer(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, b, pos, step) = (pool.array(), pool.array(), pool.scalar(), pool.scalar());
    let body = Stmt::Compound(vec![
        assign_stmt(Expr::index(Expr::id(&b), Expr::id(&pos)), idx(&a, &i)),
        add_assign_stmt(
            Expr::id(&pos),
            Expr::bin(
                BinOp::Add,
                Expr::id(&step),
                Expr::bin(BinOp::Mod, idx(&a, &i), Expr::int(3)),
            ),
        ),
    ]);
    TemplateOutput {
        stmts: vec![decl(int_ty(), &pos, Some(Expr::int(0))), count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/induction_pointer",
    }
}

/// Tiny constant trip count — threads cost more than the loop.
fn small_trip(pool: &mut NamePool) -> TemplateOutput {
    let (i, a) = (pool.loop_var(), pool.array());
    let n = pool.int_in(2, 8);
    let body =
        assign_stmt(idx(&a, &i), Expr::bin(BinOp::Mul, Expr::id(&i), Expr::int(pool.int_in(1, 5))));
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::int(n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/small_trip",
    }
}

/// `rand()` is stateful — not thread-safe without reseeding.
fn rand_fill(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a) = (pool.loop_var(), pool.bound(), pool.array());
    let rhs = if pool.chance(0.5) {
        Expr::bin(BinOp::Mod, Expr::call("rand", vec![]), Expr::int(pool.int_in(10, 1000)))
    } else {
        Expr::call("rand", vec![])
    };
    let body = assign_stmt(idx(&a, &i), rhs);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/rand_fill",
    }
}

/// `malloc`/`free` per iteration — allocator serialization + ordering.
fn alloc_in_loop(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (p, a) = (pool.scalar(), pool.array());
    let body = Stmt::Compound(vec![
        assign_stmt(
            Expr::id(&p),
            Expr::call(
                "malloc",
                vec![Expr::bin(
                    BinOp::Mul,
                    Expr::Sizeof(Box::new(pragformer_cparse::SizeofArg::Type(double_ty()))),
                    Expr::id(&n),
                )],
            ),
        ),
        assign_stmt(idx(&a, &i), Expr::int(0)),
        Stmt::Expr(Expr::call("free", vec![Expr::id(&p)])),
    ]);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/alloc_in_loop",
    }
}

/// Linked-list traversal `for (p = head; p; p = p->next)`.
fn pointer_chase(pool: &mut NamePool) -> TemplateOutput {
    let (p, head, s) = ("p", "head", pool.scalar());
    let body = add_assign_stmt(
        Expr::id(&s),
        Expr::Member { base: Box::new(Expr::id(p)), field: "value".into(), arrow: true },
    );
    let loop_ = Stmt::For {
        init: ForInit::Expr(Expr::assign(Expr::id(p), Expr::id(head))),
        cond: Some(Expr::id(p)),
        step: Some(Expr::assign(
            Expr::id(p),
            Expr::Member { base: Box::new(Expr::id(p)), field: "next".into(), arrow: true },
        )),
        body: Box::new(body),
    };
    TemplateOutput {
        stmts: vec![decl(double_ty(), &s, Some(flit(0.0))), loop_],
        helpers: vec![],
        directive: None,
        template: "neg/pointer_chase",
    }
}

/// Search with early `break` — iteration order is semantic.
fn early_break_search(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, target, found) = (pool.array(), pool.scalar(), pool.scalar());
    let body = Stmt::If {
        cond: Expr::bin(BinOp::Eq, idx(&a, &i), Expr::id(&target)),
        then: Box::new(Stmt::Compound(vec![
            assign_stmt(Expr::id(&found), Expr::id(&i)),
            Stmt::Break,
        ])),
        else_: None,
    };
    TemplateOutput {
        stmts: vec![
            decl(int_ty(), &found, Some(Expr::int(-1))),
            count_loop(&i, Expr::id(&n), body),
        ],
        helpers: vec![],
        directive: None,
        template: "neg/early_break_search",
    }
}

/// Helper with a visible side effect on a global (implementation shipped).
fn impure_helper_call(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, x, y) = (pool.loop_var(), pool.bound(), pool.array(), pool.array());
    let f = pool.func();
    let g = pool.scalar();
    let body = assign_stmt(idx(&y, &i), Expr::call(f.clone(), vec![idx(&x, &i)]));
    let helper = impure_helper(&f, &g);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![helper],
        directive: None,
        template: "neg/impure_helper_call",
    }
}

/// `strcat` into a shared buffer — sequential by construction.
fn string_accumulate(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let buf = pool.array();
    let body = Stmt::Compound(vec![
        Stmt::Expr(Expr::call(
            "sprintf",
            vec![Expr::id("chunk"), Expr::StrLit("%d,".into()), Expr::id(&i)],
        )),
        Stmt::Expr(Expr::call("strcat", vec![Expr::id(&buf), Expr::id("chunk")])),
    ]);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/string_accumulate",
    }
}

/// `a[i] = a[n - 1 - i];` — iterations collide pairwise in place.
fn reverse_overlap(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a) = (pool.loop_var(), pool.bound(), pool.array());
    let mirrored = Expr::index(
        Expr::id(&a),
        Expr::bin(BinOp::Sub, Expr::bin(BinOp::Sub, Expr::id(&n), Expr::int(1)), Expr::id(&i)),
    );
    let body = assign_stmt(idx(&a, &i), mirrored);
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: None,
        template: "neg/reverse_overlap",
    }
}
