//! Ambiguous templates — loops developers annotate inconsistently.
//!
//! These reproduce the label noise of crawled data: the *same* code shape
//! appears with and without a directive in real repositories (e.g. short
//! init loops that one project parallelizes for cc-NUMA first-touch and
//! another leaves serial, §2.1.1 of the paper). The generator assigns the
//! label by coin flip, so no classifier can reach 100% on these — which is
//! what keeps the reproduction's ceiling near the paper's ~0.8-0.85.

use super::*;
use pragformer_cparse::omp::OmpClause;

/// All ambiguous templates, with the probability that a draw is labelled
/// positive.
pub fn ambiguous_templates() -> &'static [(Template, f32)] {
    &[
        (medium_init, 0.5),
        (unknown_bound_copy, 0.5),
        (guarded_update, 0.45),
        (accumulate_then_store, 0.35),
        (first_touch_init, 0.6),
    ]
}

/// Medium-size init loop: cheap body, bound is a bare variable — whether
/// parallelization pays off depends on runtime values the text cannot
/// reveal.
fn medium_init(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a) = (pool.loop_var(), pool.bound(), pool.array());
    let body = assign_stmt(idx(&a, &i), Expr::id(&i));
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(OmpDirective::parallel_for()), // generator may strip
        template: "amb/medium_init",
    }
}

/// Copy with unknown bound.
fn unknown_bound_copy(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a, b) = (pool.loop_var(), pool.bound(), pool.array(), pool.array());
    let body = assign_stmt(idx(&b, &i), idx(&a, &i));
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(OmpDirective::parallel_for()),
        template: "amb/unknown_bound_copy",
    }
}

/// Guarded element update — independent but branchy.
fn guarded_update(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a, t) = (pool.loop_var(), pool.bound(), pool.array(), pool.scalar());
    let body = Stmt::If {
        cond: Expr::bin(BinOp::Lt, idx(&a, &i), Expr::id(&t)),
        then: Box::new(assign_stmt(idx(&a, &i), Expr::id(&t))),
        else_: None,
    };
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(OmpDirective::parallel_for()),
        template: "amb/guarded_update",
    }
}

/// Per-element accumulate-then-store with a fresh temporary — developers
/// split on whether the temporary warrants `private`.
fn accumulate_then_store(pool: &mut NamePool) -> TemplateOutput {
    let (i, n) = (pool.loop_var(), pool.bound());
    let (a, b, t) = (pool.array(), pool.array(), pool.scalar());
    let body = Stmt::Compound(vec![
        assign_stmt(Expr::id(&t), Expr::bin(BinOp::Add, idx(&a, &i), flit(2.0))),
        assign_stmt(idx(&b, &i), Expr::id(&t)),
    ]);
    TemplateOutput {
        stmts: vec![decl(double_ty(), &t, None), count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(OmpDirective::parallel_for().with(OmpClause::Private(vec![t.clone()]))),
        template: "amb/accumulate_then_store",
    }
}

/// cc-NUMA first-touch init: beneficial on NUMA boxes, pointless on small
/// machines — the paper's own example of a judgement call (§2.1.1).
fn first_touch_init(pool: &mut NamePool) -> TemplateOutput {
    let (i, n, a) = (pool.loop_var(), pool.bound(), pool.array());
    let body = assign_stmt(idx(&a, &i), flit(0.0));
    TemplateOutput {
        stmts: vec![count_loop(&i, Expr::id(&n), body)],
        helpers: vec![],
        directive: Some(OmpDirective::parallel_for()),
        template: "amb/first_touch_init",
    }
}
