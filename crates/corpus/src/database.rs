//! The assembled corpus with dedup and the statistics of Tables 3-4 and
//! Figure 3.

use crate::domain::Domain;
use crate::record::Record;
use pragformer_cparse::omp::ScheduleKind;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// The Open-OMP database equivalent.
#[derive(Default)]
pub struct Database {
    records: Vec<Record>,
    seen_keys: HashSet<u64>,
}

/// Table 3 row counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbStats {
    /// Total snippets.
    pub total: usize,
    /// Snippets with an OpenMP directive.
    pub with_directive: usize,
    /// Directives with (implicit or explicit) static schedule.
    pub schedule_static: usize,
    /// Directives with `schedule(dynamic…)`.
    pub schedule_dynamic: usize,
    /// Directives with a `reduction` clause.
    pub reduction: usize,
    /// Directives with a `private` clause.
    pub private: usize,
}

/// Table 4 length buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LengthHistogram {
    /// Snippets with ≤ 10 lines.
    pub upto_10: usize,
    /// 11–50 lines.
    pub from_11_to_50: usize,
    /// 51–100 lines.
    pub from_51_to_100: usize,
    /// More than 100 lines.
    pub over_100: usize,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deduplication probe: registers the record's normalized code key and
    /// reports whether it was new. The paper scans for replicas because
    /// GitHub code is heavily copy-pasted (§3.1.2).
    pub fn try_insert_key(&mut self, record: &Record) -> bool {
        let mut hasher = DefaultHasher::new();
        // Normalize whitespace so formatting differences don't defeat dedup.
        for tok in record.code().split_whitespace() {
            tok.hash(&mut hasher);
        }
        self.seen_keys.insert(hasher.finish())
    }

    /// Installs the final record list.
    pub fn set_records(&mut self, records: Vec<Record>) {
        self.records = records;
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the database holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Table 3 statistics.
    pub fn stats(&self) -> DbStats {
        let mut s = DbStats {
            total: self.records.len(),
            with_directive: 0,
            schedule_static: 0,
            schedule_dynamic: 0,
            reduction: 0,
            private: 0,
        };
        for r in &self.records {
            if let Some(d) = &r.directive {
                s.with_directive += 1;
                match d.schedule_kind() {
                    ScheduleKind::Dynamic => s.schedule_dynamic += 1,
                    _ => s.schedule_static += 1,
                }
                if d.has_reduction() {
                    s.reduction += 1;
                }
                if d.has_private() {
                    s.private += 1;
                }
            }
        }
        s
    }

    /// Table 4 histogram over code-segment line counts.
    pub fn length_histogram(&self) -> LengthHistogram {
        let mut h =
            LengthHistogram { upto_10: 0, from_11_to_50: 0, from_51_to_100: 0, over_100: 0 };
        for r in &self.records {
            match r.line_count() {
                0..=10 => h.upto_10 += 1,
                11..=50 => h.from_11_to_50 += 1,
                51..=100 => h.from_51_to_100 += 1,
                _ => h.over_100 += 1,
            }
        }
        h
    }

    /// Figure 3 domain shares, as `(domain, count)` in a fixed order.
    pub fn domain_distribution(&self) -> Vec<(Domain, usize)> {
        Domain::DISTRIBUTION
            .iter()
            .map(|(d, _)| (*d, self.records.iter().filter(|r| r.domain == *d).count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragformer_cparse::omp::{OmpClause, OmpDirective, ReductionOp};
    use pragformer_cparse::parse_snippet;

    fn mk(id: usize, directive: Option<OmpDirective>, body: &str) -> Record {
        Record {
            id,
            stmts: parse_snippet(body).unwrap(),
            helpers: vec![],
            directive,
            domain: Domain::Unknown,
            template: "t",
        }
    }

    #[test]
    fn stats_count_clauses() {
        let d_priv = OmpDirective::parallel_for().with(OmpClause::Private(vec!["j".into()]));
        let d_red = OmpDirective::parallel_for()
            .with(OmpClause::Reduction { op: ReductionOp::Add, vars: vec!["s".into()] });
        let d_dyn = OmpDirective::parallel_for()
            .with(OmpClause::Schedule { kind: ScheduleKind::Dynamic, chunk: None });
        let mut db = Database::new();
        db.set_records(vec![
            mk(0, Some(d_priv), "for (i = 0; i < n; i++) a[i] = 0;"),
            mk(1, Some(d_red), "for (i = 0; i < n; i++) s += a[i];"),
            mk(2, Some(d_dyn), "for (i = 0; i < n; i++) b[i] = f(i);"),
            mk(3, None, "for (i = 0; i < n; i++) printf(\"%d\", i);"),
        ]);
        let s = db.stats();
        assert_eq!(s.total, 4);
        assert_eq!(s.with_directive, 3);
        assert_eq!(s.schedule_static, 2);
        assert_eq!(s.schedule_dynamic, 1);
        assert_eq!(s.reduction, 1);
        assert_eq!(s.private, 1);
    }

    #[test]
    fn dedup_rejects_whitespace_variants() {
        let mut db = Database::new();
        let a = mk(0, None, "for (i = 0; i < n; i++) a[i] = 0;");
        assert!(db.try_insert_key(&a));
        let b = mk(1, None, "for (i = 0;  i < n;   i++)\n  a[i] = 0;");
        assert!(!db.try_insert_key(&b), "whitespace variant not deduped");
    }

    #[test]
    fn length_histogram_buckets() {
        let mut long_body = String::from("for (i = 0; i < n; i++) {\n");
        for k in 0..60 {
            long_body.push_str(&format!("a{k}[i] = i;\n"));
        }
        long_body.push('}');
        let mut db = Database::new();
        db.set_records(vec![
            mk(0, None, "for (i = 0; i < n; i++) a[i] = 0;"),
            mk(1, None, &long_body),
        ]);
        let h = db.length_histogram();
        assert_eq!(h.upto_10, 1);
        assert_eq!(h.from_51_to_100, 1);
    }
}
