//! Train/validation/test datasets (paper §3.2, Table 5).
//!
//! Two datasets are derived from the database:
//!
//! * the **directive** dataset: all records, label = has a directive (RQ1);
//! * the **clause** dataset: records *with* a directive only, labels =
//!   has `private` / has `reduction` (RQ2) — §5.3 evaluates each clause
//!   with balanced labels, which [`Dataset::balanced`] provides by
//!   subsampling the majority class.
//!
//! Splits are 80/10/10, random at the instance level, label-stratified so
//! each split keeps the positive/negative mixture.

use crate::database::Database;
use crate::record::Record;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which clause a clause-task dataset labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClauseKind {
    /// `private(...)` presence.
    Private,
    /// `reduction(...)` presence.
    Reduction,
}

/// One labelled example: an index into the database plus its label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Example {
    /// Record index within the originating database's `records()`.
    pub record: usize,
    /// Binary label for the task at hand.
    pub label: bool,
}

/// A train/valid/test split of examples.
#[derive(Clone, Debug, Default)]
pub struct Split {
    /// Training examples (80%).
    pub train: Vec<Example>,
    /// Validation examples (10%).
    pub valid: Vec<Example>,
    /// Test examples (10%).
    pub test: Vec<Example>,
}

impl Split {
    /// Total example count.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// True when all splits are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A labelled dataset bound to a database.
pub struct Dataset<'db> {
    db: &'db Database,
    /// The split (80/10/10).
    pub split: Split,
    /// Task name for reports.
    pub task: &'static str,
}

impl<'db> Dataset<'db> {
    /// Builds the RQ1 directive dataset over every record.
    pub fn directive(db: &'db Database, seed: u64) -> Self {
        let examples: Vec<Example> = db
            .records()
            .iter()
            .enumerate()
            .map(|(idx, r)| Example { record: idx, label: r.has_directive() })
            .collect();
        Self { db, split: stratified_split(examples, seed), task: "directive" }
    }

    /// Builds an RQ2 clause dataset over directive-bearing records.
    pub fn clause(db: &'db Database, kind: ClauseKind, seed: u64) -> Self {
        let examples: Vec<Example> = db
            .records()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.has_directive())
            .map(|(idx, r)| Example {
                record: idx,
                label: match kind {
                    ClauseKind::Private => r.has_private(),
                    ClauseKind::Reduction => r.has_reduction(),
                },
            })
            .collect();
        let task = match kind {
            ClauseKind::Private => "private",
            ClauseKind::Reduction => "reduction",
        };
        Self { db, split: stratified_split(examples, seed), task }
    }

    /// The record behind an example.
    pub fn record(&self, ex: &Example) -> &Record {
        &self.db.records()[ex.record]
    }

    /// Balances a split's training set by subsampling the majority class
    /// (the paper trains clause models on balanced labels, §3.2/§5.3).
    pub fn balanced(mut self, seed: u64) -> Self {
        self.split.train = balance(std::mem::take(&mut self.split.train), seed);
        self.split.valid = balance(std::mem::take(&mut self.split.valid), seed ^ 1);
        self.split.test = balance(std::mem::take(&mut self.split.test), seed ^ 2);
        self
    }
}

fn balance(mut examples: Vec<Example>, seed: u64) -> Vec<Example> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<Example> = examples.iter().filter(|e| e.label).cloned().collect();
    let neg: Vec<Example> = examples.iter().filter(|e| !e.label).cloned().collect();
    let keep = pos.len().min(neg.len());
    if keep == 0 {
        return examples;
    }
    let mut subsample = |mut v: Vec<Example>| {
        for i in (1..v.len()).rev() {
            let j = rng.gen_range(0..=i);
            v.swap(i, j);
        }
        v.truncate(keep);
        v
    };
    let mut out = subsample(pos);
    out.extend(subsample(neg));
    // Final shuffle so labels interleave.
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    examples.clear();
    out
}

/// 80/10/10 stratified split.
fn stratified_split(examples: Vec<Example>, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<Example> = examples.iter().filter(|e| e.label).cloned().collect();
    let mut neg: Vec<Example> = examples.into_iter().filter(|e| !e.label).collect();
    let mut shuffle = |v: &mut Vec<Example>| {
        for i in (1..v.len()).rev() {
            let j = rng.gen_range(0..=i);
            v.swap(i, j);
        }
    };
    shuffle(&mut pos);
    shuffle(&mut neg);
    let mut split = Split::default();
    for class in [pos, neg] {
        let n = class.len();
        let n_test = n / 10;
        let n_valid = n / 10;
        for (i, ex) in class.into_iter().enumerate() {
            if i < n_test {
                split.test.push(ex);
            } else if i < n_test + n_valid {
                split.valid.push(ex);
            } else {
                split.train.push(ex);
            }
        }
    }
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xDEAD);
    let mut shuffle2 = |v: &mut Vec<Example>| {
        for i in (1..v.len()).rev() {
            let j = rng2.gen_range(0..=i);
            v.swap(i, j);
        }
    };
    shuffle2(&mut split.train);
    shuffle2(&mut split.valid);
    shuffle2(&mut split.test);
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn db() -> Database {
        generate(&GeneratorConfig { target_records: 800, seed: 31, ..Default::default() })
    }

    #[test]
    fn split_ratios_are_80_10_10() {
        let db = db();
        let ds = Dataset::directive(&db, 1);
        let total = ds.split.len();
        assert_eq!(total, db.len());
        let frac_train = ds.split.train.len() as f64 / total as f64;
        assert!((0.78..0.84).contains(&frac_train), "{frac_train}");
        assert!(ds.split.valid.len().abs_diff(ds.split.test.len()) <= 2);
    }

    #[test]
    fn splits_are_disjoint_and_cover() {
        let db = db();
        let ds = Dataset::directive(&db, 2);
        let mut seen = std::collections::HashSet::new();
        for ex in ds.split.train.iter().chain(&ds.split.valid).chain(&ds.split.test) {
            assert!(seen.insert(ex.record), "record {} in two splits", ex.record);
        }
        assert_eq!(seen.len(), db.len());
    }

    #[test]
    fn stratification_preserves_label_mix() {
        let db = db();
        let ds = Dataset::directive(&db, 3);
        let frac =
            |v: &[Example]| v.iter().filter(|e| e.label).count() as f64 / v.len().max(1) as f64;
        let overall = frac(&ds.split.train);
        assert!((frac(&ds.split.valid) - overall).abs() < 0.08);
        assert!((frac(&ds.split.test) - overall).abs() < 0.08);
    }

    #[test]
    fn clause_dataset_only_contains_positives_of_rq1() {
        let db = db();
        let ds = Dataset::clause(&db, ClauseKind::Private, 4);
        for ex in ds.split.train.iter().chain(&ds.split.valid).chain(&ds.split.test) {
            assert!(ds.record(ex).has_directive());
        }
        let stats = db.stats();
        assert_eq!(ds.split.len(), stats.with_directive);
    }

    #[test]
    fn balanced_subsamples_majority() {
        let db = db();
        let ds = Dataset::clause(&db, ClauseKind::Reduction, 5).balanced(6);
        let pos = ds.split.train.iter().filter(|e| e.label).count();
        let neg = ds.split.train.len() - pos;
        assert_eq!(pos, neg, "train not balanced: {pos} vs {neg}");
    }

    #[test]
    fn splits_are_deterministic() {
        let db = db();
        let a = Dataset::directive(&db, 7);
        let b = Dataset::directive(&db, 7);
        assert_eq!(a.split.train, b.split.train);
        assert_eq!(a.split.test, b.split.test);
        let c = Dataset::directive(&db, 8);
        assert_ne!(a.split.train, c.split.train);
    }
}
