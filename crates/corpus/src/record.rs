//! A single Open-OMP record: a code snippet plus its directive label.
//!
//! Mirrors the paper's record structure (§3.1.2): (1) the code segment,
//! (2) the OpenMP directive (if any), (3) the AST — here the AST *is* the
//! primary representation and the source text is printed from it.

use crate::domain::Domain;
use pragformer_cparse::omp::OmpDirective;
use pragformer_cparse::printer::print_stmts;
use pragformer_cparse::{FuncDef, Stmt};

/// One corpus record.
#[derive(Clone, Debug)]
pub struct Record {
    /// Stable id within the database.
    pub id: usize,
    /// The loop snippet (declarations + loop nest), *without* the pragma.
    pub stmts: Vec<Stmt>,
    /// Implementations of helper functions called inside the loop, when
    /// the generator produced any (kept in the record like the paper's
    /// "implementations of functions called inside the loop segment";
    /// model input stays the loop itself, which the 110-token cap forces).
    pub helpers: Vec<FuncDef>,
    /// The directive, `None` for negative records.
    pub directive: Option<OmpDirective>,
    /// Repository-domain label (Figure 3).
    pub domain: Domain,
    /// Generating template, for ablations and debugging.
    pub template: &'static str,
}

impl Record {
    /// True when the snippet carries an OpenMP directive (RQ1 label).
    pub fn has_directive(&self) -> bool {
        self.directive.is_some()
    }

    /// RQ2 label: directive contains a `private` clause.
    pub fn has_private(&self) -> bool {
        self.directive.as_ref().is_some_and(OmpDirective::has_private)
    }

    /// RQ2 label: directive contains a `reduction` clause.
    pub fn has_reduction(&self) -> bool {
        self.directive.as_ref().is_some_and(OmpDirective::has_reduction)
    }

    /// The snippet's C source (loop only, no pragma) — the model input.
    pub fn code(&self) -> String {
        print_stmts(&self.stmts)
    }

    /// The full record source as it would sit in a `.c` file: pragma (if
    /// any), loop, then helper implementations.
    pub fn full_source(&self) -> String {
        let mut out = String::new();
        if let Some(d) = &self.directive {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&self.code());
        for h in &self.helpers {
            out.push('\n');
            out.push_str(&pragformer_cparse::printer::print_translation_unit(
                &pragformer_cparse::TranslationUnit {
                    items: vec![pragformer_cparse::Item::Func(h.clone())],
                },
            ));
        }
        out
    }

    /// Number of source lines of the code segment (Table 4 buckets on
    /// this).
    pub fn line_count(&self) -> usize {
        self.code().lines().filter(|l| !l.trim().is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragformer_cparse::omp::OmpClause;
    use pragformer_cparse::parse_snippet;

    fn record_with(directive: Option<OmpDirective>) -> Record {
        Record {
            id: 0,
            stmts: parse_snippet("for (i = 0; i < n; i++) a[i] = i;").unwrap(),
            helpers: Vec::new(),
            directive,
            domain: Domain::Unknown,
            template: "test",
        }
    }

    #[test]
    fn labels_follow_directive() {
        let neg = record_with(None);
        assert!(!neg.has_directive() && !neg.has_private() && !neg.has_reduction());

        let pos = record_with(Some(
            OmpDirective::parallel_for().with(OmpClause::Private(vec!["j".into()])).with(
                OmpClause::Reduction {
                    op: pragformer_cparse::omp::ReductionOp::Add,
                    vars: vec!["s".into()],
                },
            ),
        ));
        assert!(pos.has_directive() && pos.has_private() && pos.has_reduction());
    }

    #[test]
    fn full_source_includes_pragma_and_code() {
        let pos = record_with(Some(OmpDirective::parallel_for()));
        let src = pos.full_source();
        assert!(src.starts_with("#pragma omp parallel for\n"));
        assert!(src.contains("for (i = 0; i < n; i++)"));
        // And the pragma-free view does not leak it.
        assert!(!pos.code().contains("pragma"));
    }

    #[test]
    fn line_count_ignores_blanks() {
        let r = record_with(None);
        assert_eq!(r.line_count(), 2); // for-line + body line
    }

    #[test]
    fn full_source_reparses_with_pragma_attached() {
        let pos = record_with(Some(OmpDirective::parallel_for()));
        let reparsed = parse_snippet(&pos.full_source()).unwrap();
        assert!(matches!(&reparsed[0], Stmt::Pragma { .. }));
    }
}
