//! Corpus generation (the paper's Figure 2 pipeline, synthesized).

use crate::database::Database;
use crate::domain::Domain;
use crate::names::NamePool;
use crate::record::Record;
use crate::templates::{
    ambiguous_templates, negative_templates, positive_templates, TemplateOutput,
};
use pragformer_cparse::{Expr, Stmt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Project-specific function names used by the surface-realism pass —
/// functions whose implementations live outside the snippet, exactly the
/// "lack of association of functions … in the code segments" the paper
/// blames for ComPar's misses (§5.2).
const PROJECT_FUNCS: &[&str] = &[
    "update_cell",
    "compute_flux",
    "interpolate",
    "advance",
    "eval_rhs",
    "transform_point",
    "body_force",
    "smooth_value",
    "lookup_coeff",
];

/// Struct field names for the struct-of-arrays realism pass.
const FIELDS: &[&str] = &["x", "y", "z", "val", "mass", "weight", "re", "im"];

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Target number of records before deduplication (the raw DB of
    /// Table 3 has 17,013; tests use a few hundred).
    pub target_records: usize,
    /// Master seed: everything downstream is a pure function of it.
    pub seed: u64,
    /// Fraction of records drawn from positive templates.
    pub positive_fraction: f32,
    /// Fraction of records drawn from ambiguous templates (counted inside
    /// whichever class their coin flip lands on).
    pub ambiguous_fraction: f32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            // Positive templates must cover ~45% of the DB (7,630/17,013
            // with directives); ambiguous draws add positives too, so the
            // pure-positive share sits a bit below that.
            target_records: 17_013,
            seed: 20220404,
            positive_fraction: 0.34,
            ambiguous_fraction: 0.24,
        }
    }
}

/// Surface-realism pass over generated snippets.
///
/// Real GitHub loops reference project functions and structs whose
/// definitions live in other files. With the probabilities below, a
/// snippet's right-hand sides get wrapped in calls to [`PROJECT_FUNCS`]
/// (undefined in the snippet — deterministic analyzers must refuse, while
/// developers who *know* the callee annotated the loop), or its array
/// element accesses become struct-field accesses. Applied to both classes
/// so the mere presence of a call/struct token is not a label giveaway.
fn roughen(out: &mut TemplateOutput, rng: &mut StdRng) {
    // A share of developers spell out `private(i)` for the loop counter
    // even though OpenMP privatizes it implicitly — Table 3's private
    // count (3,403 of 7,630) includes these.
    if let Some(directive) = &mut out.directive {
        if !directive.has_private() && rng.gen::<f32>() < 0.28 {
            if let Some(var) = outer_loop_var(&out.stmts) {
                directive.clauses.push(pragformer_cparse::omp::OmpClause::Private(vec![var]));
            }
        }
    }
    // Snippets that ship their helper implementation stay as-is.
    if !out.helpers.is_empty() {
        return;
    }
    let roll: f32 = rng.gen();
    let call_p = if out.directive.is_some() { 0.42 } else { 0.20 };
    let struct_p = if out.directive.is_some() { 0.18 } else { 0.12 };
    if roll < call_p {
        let name = PROJECT_FUNCS[rng.gen_range(0..PROJECT_FUNCS.len())];
        for s in &mut out.stmts {
            if wrap_first_rhs_in_call(s, name) {
                break;
            }
        }
    } else if roll < call_p + struct_p {
        let field = FIELDS[rng.gen_range(0..FIELDS.len())];
        for s in &mut out.stmts {
            structify_stmt(s, field);
        }
    }
}

/// Wraps symbolic loop bounds in a `POLYBENCH_LOOP_BOUND(C, n)`-style
/// macro call (benchmark-domain flavour).
fn macroize_loop_bounds(s: &mut Stmt) {
    if let Stmt::For { cond, body, .. } = s {
        if let Some(Expr::Binary { r, .. }) = cond {
            if let Expr::Id(bound) = r.as_ref() {
                let bound = bound.clone();
                **r = Expr::call("POLYBENCH_LOOP_BOUND", vec![Expr::int(4000), Expr::id(bound)]);
            }
        }
        macroize_loop_bounds(body);
    } else if let Stmt::Compound(stmts) = s {
        for st in stmts {
            macroize_loop_bounds(st);
        }
    }
}

/// Extends the first loop's body with independent element-wise statements
/// so snippet lengths follow the paper's Table 4 mixture (most short, a
/// heavy tail past 100 lines). Independent statements change neither the
/// label nor the dependence verdict.
fn pad_outer_loop(stmts: &mut [Stmt], pool: &mut crate::names::NamePool) {
    let extra = crate::templates::sample_padding_public(pool);
    if extra == 0 {
        return;
    }
    let Some(var) = outer_loop_var(stmts) else { return };
    for s in stmts.iter_mut() {
        if let Stmt::For { body, .. } = s {
            let pads = crate::templates::padding_stmts_public(pool, &var, extra);
            match body.as_mut() {
                Stmt::Compound(v) => v.extend(pads),
                other => {
                    let old = std::mem::replace(other, Stmt::Empty);
                    let mut v = vec![old];
                    v.extend(pads);
                    *other = Stmt::Compound(v);
                }
            }
            return;
        }
    }
}

/// The variable driving the first for-loop of a snippet.
fn outer_loop_var(stmts: &[Stmt]) -> Option<String> {
    for s in stmts {
        if let Stmt::For { init, .. } = s {
            match init {
                pragformer_cparse::ForInit::Expr(Expr::Assign { lhs, .. }) => {
                    if let Expr::Id(v) = lhs.as_ref() {
                        return Some(v.clone());
                    }
                }
                pragformer_cparse::ForInit::Decl(decls) => {
                    return decls.first().map(|d| d.name.clone());
                }
                _ => {}
            }
        }
    }
    None
}

/// Rewrites the first `lhs = rhs` inside a loop body to
/// `lhs = name(rhs)`. Returns true when a rewrite happened.
fn wrap_first_rhs_in_call(s: &mut Stmt, name: &str) -> bool {
    match s {
        Stmt::For { body, .. } | Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
            wrap_first_rhs_in_call(body, name)
        }
        Stmt::Compound(stmts) => stmts.iter_mut().any(|st| wrap_first_rhs_in_call(st, name)),
        Stmt::If { then, else_, .. } => {
            wrap_first_rhs_in_call(then, name)
                || else_.as_deref_mut().is_some_and(|e| wrap_first_rhs_in_call(e, name))
        }
        Stmt::Pragma { stmt, .. } => wrap_first_rhs_in_call(stmt, name),
        Stmt::Expr(Expr::Assign { rhs, .. }) => {
            let old = std::mem::replace(rhs.as_mut(), Expr::int(0));
            **rhs = Expr::call(name, vec![old]);
            true
        }
        _ => false,
    }
}

/// Turns every `array[subscript]` into `array[subscript].field`.
fn structify_stmt(s: &mut Stmt, field: &str) {
    match s {
        Stmt::For { body, .. } | Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
            structify_stmt(body, field)
        }
        Stmt::Compound(stmts) => {
            for st in stmts {
                structify_stmt(st, field);
            }
        }
        Stmt::If { cond, then, else_ } => {
            structify_expr(cond, field);
            structify_stmt(then, field);
            if let Some(e) = else_ {
                structify_stmt(e, field);
            }
        }
        Stmt::Pragma { stmt, .. } => structify_stmt(stmt, field),
        Stmt::Expr(e) => structify_expr(e, field),
        Stmt::Return(Some(e)) => structify_expr(e, field),
        _ => {}
    }
}

fn structify_expr(e: &mut Expr, field: &str) {
    // Recurse first so inner Index nodes are wrapped before the check
    // below sees them (avoid double wrapping).
    match e {
        Expr::Binary { l, r, .. } => {
            structify_expr(l, field);
            structify_expr(r, field);
        }
        Expr::Assign { lhs, rhs, .. } => {
            structify_expr(lhs, field);
            structify_expr(rhs, field);
        }
        Expr::Unary { expr, .. } => structify_expr(expr, field),
        Expr::Ternary { cond, then, else_ } => {
            structify_expr(cond, field);
            structify_expr(then, field);
            structify_expr(else_, field);
        }
        Expr::Call { args, .. } => {
            for a in args {
                structify_expr(a, field);
            }
        }
        Expr::Comma(a, b) => {
            structify_expr(a, field);
            structify_expr(b, field);
        }
        Expr::Cast { expr, .. } => structify_expr(expr, field),
        _ => {}
    }
    if let Expr::Index { base, idx } = e {
        // Only 1-D element accesses become struct fields; 2-D matrices
        // stay plain. Subscripts are left untouched.
        if matches!(base.as_ref(), Expr::Id(_)) && !matches!(idx.as_ref(), Expr::Index { .. }) {
            let inner = std::mem::replace(e, Expr::Id(String::new()));
            *e = Expr::Member { base: Box::new(inner), field: field.to_string(), arrow: false };
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for unit tests and fast benches.
    pub fn small(seed: u64) -> Self {
        Self { target_records: 1200, seed, ..Default::default() }
    }

    /// The paper-scale configuration (Table 3 size).
    pub fn paper(seed: u64) -> Self {
        Self { seed, ..Default::default() }
    }
}

/// Generates the raw database: draws templates, assigns domains, and
/// deduplicates by normalized code text (the paper's replica scan).
pub fn generate(cfg: &GeneratorConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let positives = positive_templates();
    let negatives = negative_templates();
    let ambiguous = ambiguous_templates();
    let mut records: Vec<Record> = Vec::with_capacity(cfg.target_records);
    let mut db = Database::new();
    let mut draws = 0usize;
    // Cap total draws so pathological configs terminate.
    let max_draws = cfg.target_records * 4 + 1024;
    while records.len() < cfg.target_records && draws < max_draws {
        draws += 1;
        let u: f32 = rng.gen();
        let pool_seed: u64 = rng.gen();
        let mut pool = NamePool::new(pool_seed);
        let mut output: TemplateOutput = if u < cfg.ambiguous_fraction {
            let (t, p_pos) = ambiguous[rng.gen_range(0..ambiguous.len())];
            let mut out = t(&mut pool);
            if rng.gen::<f32>() >= p_pos {
                out.directive = None; // this developer left it serial
            }
            out
        } else if u < cfg.ambiguous_fraction + cfg.positive_fraction {
            positives[rng.gen_range(0..positives.len())](&mut pool)
        } else {
            negatives[rng.gen_range(0..negatives.len())](&mut pool)
        };
        let domain = Domain::sample(rng.gen());
        roughen(&mut output, &mut rng);
        // Benchmark-domain repositories (NAS, PolyBench ports — 16.5% of
        // the crawl, Figure 3) parameterize loop bounds through
        // function-like macros; the held-out PolyBench suite then looks
        // in-distribution to the model, exactly as it did for the paper's
        // GitHub-trained PragFormer.
        if domain == Domain::Benchmark && rng.gen::<f32>() < 0.45 {
            for s in &mut output.stmts {
                macroize_loop_bounds(s);
            }
        }
        pad_outer_loop(&mut output.stmts, &mut pool);
        let record = Record {
            id: records.len(),
            stmts: output.stmts,
            helpers: output.helpers,
            directive: output.directive,
            domain,
            template: output.template,
        };
        if db.try_insert_key(&record) {
            records.push(record);
        }
    }
    db.set_records(records);
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let db = generate(&GeneratorConfig { target_records: 300, seed: 1, ..Default::default() });
        // Dedup may shave a handful, but the draw cap gives headroom.
        assert!(db.len() >= 295, "only {} records", db.len());
    }

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = GeneratorConfig { target_records: 100, seed: 9, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.records().iter().zip(b.records()) {
            assert_eq!(ra.code(), rb.code());
            assert_eq!(ra.has_directive(), rb.has_directive());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig { target_records: 50, seed: 1, ..Default::default() });
        let b = generate(&GeneratorConfig { target_records: 50, seed: 2, ..Default::default() });
        let same =
            a.records().iter().zip(b.records()).filter(|(x, y)| x.code() == y.code()).count();
        assert!(same < 10, "{same} identical records across seeds");
    }

    #[test]
    fn no_duplicate_code() {
        let db = generate(&GeneratorConfig { target_records: 500, seed: 3, ..Default::default() });
        let mut seen = std::collections::HashSet::new();
        for r in db.records() {
            assert!(seen.insert(r.code()), "duplicate snippet survived dedup");
        }
    }

    #[test]
    fn label_mix_is_roughly_balanced() {
        let db = generate(&GeneratorConfig { target_records: 2000, seed: 4, ..Default::default() });
        let stats = db.stats();
        let frac = stats.with_directive as f64 / db.len() as f64;
        // Table 3: 7,630/17,013 ≈ 0.448.
        assert!((0.35..0.55).contains(&frac), "positive fraction {frac}");
    }

    #[test]
    fn every_record_parses_back() {
        let db = generate(&GeneratorConfig { target_records: 200, seed: 5, ..Default::default() });
        for r in db.records() {
            pragformer_cparse::parse_snippet(&r.code())
                .unwrap_or_else(|e| panic!("{} does not reparse: {e}\n{}", r.template, r.code()));
            if r.helpers.is_empty() {
                // pragma + loop parses as a snippet; helper function
                // definitions need the translation-unit grammar.
                pragformer_cparse::parse_snippet(&r.full_source())
                    .unwrap_or_else(|e| panic!("{} full_source: {e}", r.template));
            } else {
                let helpers_src = pragformer_cparse::printer::print_translation_unit(
                    &pragformer_cparse::TranslationUnit {
                        items: r
                            .helpers
                            .iter()
                            .map(|h| pragformer_cparse::Item::Func(h.clone()))
                            .collect(),
                    },
                );
                pragformer_cparse::parse_translation_unit(&helpers_src)
                    .unwrap_or_else(|e| panic!("{} helpers: {e}\n{helpers_src}", r.template));
            }
        }
    }
}
