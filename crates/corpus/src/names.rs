//! Identifier pools with realistic naming distributions.
//!
//! The paper observes (§5.1) that parallelizable loops carry an implicit
//! naming convention — `i, j, k` counters, `A, B, vec, arr` arrays — and
//! that this signal is strong enough that raw text beats replaced text.
//! The pools below reproduce that: common names dominate, with a tail of
//! idiosyncratic project-specific names.

use pragformer_tensor_free_rng::SeededNameRng;

/// Tiny local RNG shim so this module stays dependency-clean besides
/// `rand`; see [`SeededNameRng`].
mod pragformer_tensor_free_rng {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Seeded RNG wrapper for name drawing.
    pub struct SeededNameRng(StdRng);

    impl SeededNameRng {
        /// Creates from a seed.
        pub fn new(seed: u64) -> Self {
            Self(StdRng::seed_from_u64(seed))
        }

        /// Uniform integer below `n`.
        pub fn below(&mut self, n: usize) -> usize {
            self.0.gen_range(0..n)
        }

        /// Uniform float in [0,1).
        pub fn unit(&mut self) -> f32 {
            self.0.gen()
        }
    }
}

const LOOP_VARS: &[&str] = &["i", "j", "k", "l", "ii", "jj", "idx", "it"];
const BOUND_VARS: &[&str] =
    &["n", "N", "m", "M", "len", "size", "count", "num", "dim", "rows", "cols", "nx", "ny"];
const ARRAY_NAMES: &[&str] = &[
    "a", "b", "c", "A", "B", "C", "x", "y", "z", "vec", "arr", "mat", "data", "buf", "values",
    "src", "dst", "in", "out", "grid", "u", "v", "w", "x1", "y_1", "tmp_arr", "field",
];
const SCALAR_NAMES: &[&str] = &[
    "sum", "total", "acc", "s", "t", "prod", "result", "tmp", "val", "alpha", "beta", "scale",
    "mean", "norm", "maxval", "minval", "best", "err",
];
const FUNC_NAMES: &[&str] = &[
    "compute",
    "process",
    "update",
    "calc",
    "evaluate",
    "transform",
    "kernel",
    "apply",
    "work",
    "Calc",
    "MoreCalc",
    "heavy_compute",
    "step",
];
const ODD_SUFFIXES: &[&str] = &["_loc", "2", "_new", "Val", "_buf", "3", "_tmp", "Q"];

/// Draws fresh, non-clashing identifiers for one snippet.
pub struct NamePool {
    rng: SeededNameRng,
    used: Vec<String>,
    /// Probability of mutating a common name into an idiosyncratic one.
    odd_prob: f32,
}

impl NamePool {
    /// Creates a pool with the default 12% idiosyncratic-name rate.
    pub fn new(seed: u64) -> Self {
        Self { rng: SeededNameRng::new(seed), used: Vec::new(), odd_prob: 0.12 }
    }

    fn fresh_from(&mut self, pool: &[&str]) -> String {
        for _ in 0..32 {
            let mut name = pool[self.rng.below(pool.len())].to_string();
            if self.rng.unit() < self.odd_prob {
                name.push_str(ODD_SUFFIXES[self.rng.below(ODD_SUFFIXES.len())]);
            }
            if !self.used.iter().any(|u| u == &name) {
                self.used.push(name.clone());
                return name;
            }
        }
        // Pool exhausted: synthesize an indexed name.
        let name = format!("{}{}", pool[0], self.used.len());
        self.used.push(name.clone());
        name
    }

    /// A loop counter (`i`, `j`, …).
    pub fn loop_var(&mut self) -> String {
        self.fresh_from(LOOP_VARS)
    }

    /// A loop bound (`n`, `len`, …).
    pub fn bound(&mut self) -> String {
        self.fresh_from(BOUND_VARS)
    }

    /// An array name.
    pub fn array(&mut self) -> String {
        self.fresh_from(ARRAY_NAMES)
    }

    /// A scalar name.
    pub fn scalar(&mut self) -> String {
        self.fresh_from(SCALAR_NAMES)
    }

    /// A function name.
    pub fn func(&mut self) -> String {
        self.fresh_from(FUNC_NAMES)
    }

    /// Uniform integer in `[lo, hi)` for template constants.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.rng.below((hi - lo).max(1) as usize) as i64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f32) -> bool {
        self.rng.unit() < p
    }

    /// Uniform choice from a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.rng.below(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_within_a_pool() {
        let mut p = NamePool::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            assert!(seen.insert(p.array()), "duplicate array name");
        }
    }

    #[test]
    fn pools_are_deterministic() {
        let mut a = NamePool::new(42);
        let mut b = NamePool::new(42);
        for _ in 0..10 {
            assert_eq!(a.loop_var(), b.loop_var());
            assert_eq!(a.scalar(), b.scalar());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = NamePool::new(1);
        let mut b = NamePool::new(2);
        let names_a: Vec<String> = (0..8).map(|_| a.array()).collect();
        let names_b: Vec<String> = (0..8).map(|_| b.array()).collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn int_in_respects_bounds() {
        let mut p = NamePool::new(3);
        for _ in 0..100 {
            let v = p.int_in(5, 10);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn exhausted_pool_synthesizes_names() {
        let mut p = NamePool::new(4);
        // LOOP_VARS has 8 entries; odd suffixes add some headroom, the
        // fallback must kick in eventually without panicking.
        let names: Vec<String> = (0..100).map(|_| p.loop_var()).collect();
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
